//! Property and fuzz suite for prepared-model artifacts.
//!
//! Two contracts, both load-bearing for scale-out:
//!
//! * **Round-trip bit-identity** — serialize → deserialize → serialize is
//!   the identity on bytes, across every model family × scheme combination
//!   a worker can be asked to prepare. A worker cold-starting from an
//!   artifact therefore computes from exactly the tensors an in-process
//!   preparation would have produced.
//! * **Total decoding** — `ModelArtifact::from_bytes` over corrupted,
//!   truncated, bit-flipped or random input always returns a typed
//!   [`ArtifactError`], never panics and never silently accepts. The fuzz
//!   corpus is generated from a seeded [`Rng`], so every failure is
//!   replayable from the reported case number.

use olive_api::{ArtifactError, ModelArtifact, ModelFamily, Pipeline, Scheme};
use olive_harness::{check_with, prop_assert, CheckConfig};
use olive_models::artifact::{FORMAT_VERSION, HEADER_BYTES, MAGIC};

/// Scheme specs covering the registry's structurally distinct encodings
/// (outlier-victim pairs, plain uniform grids, the identity scheme).
const SPECS: [&str; 4] = ["olive-4bit", "olive-8bit", "uniform:4", "fp32"];

fn scheme(spec: &str) -> Scheme {
    Scheme::parse(spec).unwrap_or_else(|e| panic!("spec '{spec}' must parse: {e:?}"))
}

/// One prepared eval artifact per family, each carrying every scheme in
/// [`SPECS`] as a student — prepared once and shared across properties
/// (preparation dominates the suite's runtime).
fn eval_corpus() -> Vec<ModelArtifact> {
    ModelFamily::all()
        .into_iter()
        .map(|family| {
            let pipeline = Pipeline::new(family.tiny())
                .task("artifact-prop")
                .seed(11)
                .batches(2);
            let schemes: Vec<Scheme> = SPECS.iter().map(|s| scheme(s)).collect();
            ModelArtifact::eval(
                format!("family={family:?};size=tiny;seed=11;batches=2"),
                format!("{family:?}"),
                &pipeline.prepare(),
            )
            .with_students(&schemes)
        })
        .collect()
}

#[test]
fn round_trip_is_bit_identical_across_families_and_schemes() {
    let corpus = eval_corpus();
    // Generation artifacts ride the same container; cover both payload
    // kinds and a couple of prompt lengths.
    let gen_corpus: Vec<ModelArtifact> = [(ModelFamily::Gpt2, 4usize), (ModelFamily::Bloom, 9)]
        .into_iter()
        .map(|(family, prompt)| {
            let pipeline = Pipeline::new(family.tiny()).seed(23);
            ModelArtifact::gen(
                format!("family={family:?};size=tiny;seed=23;prompt={prompt}"),
                format!("{family:?}"),
                &pipeline.prepare_generation(prompt),
            )
            .with_students(&[scheme("olive-4bit")])
        })
        .collect();

    check_with(
        CheckConfig {
            cases: 40,
            seed: 0x0A_71FAC7,
        },
        "artifact round-trip bit-identity",
        |rng| {
            let all = corpus.len() + gen_corpus.len();
            rng.below(all)
        },
        |&index| {
            let artifact = corpus
                .iter()
                .chain(gen_corpus.iter())
                .nth(index)
                .ok_or_else(|| format!("index {index} out of corpus range"))?;
            let bytes = artifact.to_bytes();
            let reloaded = ModelArtifact::from_bytes(&bytes)
                .map_err(|e| format!("valid artifact rejected: {e}"))?;
            prop_assert!(
                reloaded.to_bytes() == bytes,
                "re-serialization changed the bytes for key \"{}\"",
                artifact.key
            );
            prop_assert!(
                reloaded.key == artifact.key && reloaded.model_name == artifact.model_name,
                "metadata drifted for key \"{}\"",
                artifact.key
            );
            prop_assert!(
                reloaded.students.len() == artifact.students.len(),
                "student count drifted"
            );
            for (spec, student) in &artifact.students {
                let loaded = reloaded
                    .student(spec)
                    .ok_or_else(|| format!("student '{spec}' lost in round-trip"))?;
                prop_assert!(
                    loaded.embedding.data() == student.embedding.data(),
                    "student '{spec}' embedding bits drifted"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn single_byte_flips_are_always_rejected() {
    // FNV-1a's update is injective in both accumulator and byte, so any
    // single-byte payload flip changes the checksum; header flips hit the
    // magic/version/length/checksum checks instead. No flip may decode.
    let artifact = eval_corpus().swap_remove(0);
    let pristine = artifact.to_bytes();
    check_with(
        CheckConfig {
            cases: 400,
            seed: 0xF11B,
        },
        "single-byte flips are rejected",
        |rng| {
            let position = rng.below(pristine.len());
            let flip = 1 + rng.below(255) as u8; // never the identity XOR
            (position, flip)
        },
        |&(position, flip)| {
            let mut corrupted = pristine.clone();
            let byte = corrupted
                .get_mut(position)
                .ok_or_else(|| format!("position {position} out of range"))?;
            *byte ^= flip;
            prop_assert!(
                ModelArtifact::from_bytes(&corrupted).is_err(),
                "flip {flip:#04x} at byte {position} decoded successfully"
            );
            Ok(())
        },
    );
}

#[test]
fn truncations_and_extensions_are_always_rejected() {
    let artifact = eval_corpus().swap_remove(1);
    let pristine = artifact.to_bytes();
    check_with(
        CheckConfig {
            cases: 300,
            seed: 0x7268,
        },
        "truncations/extensions are rejected",
        |rng| {
            // Bias towards interesting prefixes: the header boundary region
            // and uniformly random cuts; extensions append 1..=8 bytes.
            match rng.below(3) {
                0 => rng.below(HEADER_BYTES + 8),
                1 => rng.below(pristine.len()),
                _ => pristine.len() + 1 + rng.below(8),
            }
        },
        |&length| {
            let mut mutated = pristine.clone();
            mutated.resize(length, 0xA5);
            prop_assert!(
                length != pristine.len(),
                "generator must never produce the pristine length"
            );
            let error = match ModelArtifact::from_bytes(&mutated) {
                Err(e) => e,
                Ok(_) => return Err(format!("length {length} decoded successfully")),
            };
            // Truncation and extension surface as framing errors, never as
            // a semantic misread of garbage content.
            prop_assert!(
                matches!(
                    error,
                    ArtifactError::Truncated { .. } | ArtifactError::Malformed(_)
                ),
                "length {length}: unexpected error class {error}"
            );
            Ok(())
        },
    );
}

#[test]
fn random_bytes_never_panic_and_never_decode() {
    check_with(
        CheckConfig {
            cases: 200,
            seed: 0x9A9B,
        },
        "random input is rejected",
        |rng| {
            let len = rng.below(256);
            let mut bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            // Half the cases get a valid magic prefix so the deeper header
            // and payload checks are exercised too.
            if rng.below(2) == 0 {
                for (dst, src) in bytes.iter_mut().zip(MAGIC.iter()) {
                    *dst = *src;
                }
            }
            bytes
        },
        |bytes| {
            prop_assert!(
                ModelArtifact::from_bytes(bytes).is_err(),
                "{} random bytes decoded successfully",
                bytes.len()
            );
            Ok(())
        },
    );
}

#[test]
fn each_corruption_yields_its_typed_error() {
    let artifact = eval_corpus().swap_remove(2);
    let pristine = artifact.to_bytes();

    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        ModelArtifact::from_bytes(&bad_magic),
        Err(ArtifactError::BadMagic { .. })
    ));

    let mut future = pristine.clone();
    future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match ModelArtifact::from_bytes(&future) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!((found, supported), (FORMAT_VERSION + 1, FORMAT_VERSION));
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    let mut bad_sum = pristine.clone();
    let last = bad_sum.len() - 1;
    bad_sum[last] ^= 0x01;
    assert!(matches!(
        ModelArtifact::from_bytes(&bad_sum),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));

    assert!(matches!(
        ModelArtifact::from_bytes(&pristine[..HEADER_BYTES - 1]),
        Err(ArtifactError::Truncated { .. })
    ));

    let mut trailing = pristine.clone();
    trailing.push(0);
    assert!(matches!(
        ModelArtifact::from_bytes(&trailing),
        Err(ArtifactError::Malformed(_))
    ));

    // And the pristine bytes still decode after all that cloning.
    assert!(ModelArtifact::from_bytes(&pristine).is_ok());
}
