//! Registry property tests: spec round-tripping, malformed-spec rejection,
//! and the per-row granularity contract.

use olive_api::{Granularity, Scheme};
use olive_core::TensorQuantizer;
use olive_harness::check::{check, check_with, CheckConfig};
use olive_harness::{prop_assert, prop_assert_eq};
use olive_tensor::rng::Rng;
use olive_tensor::Tensor;

/// `Scheme::parse(s).to_string() == s` for every registry entry, at both
/// granularities.
#[test]
fn every_registry_spec_round_trips() {
    let entries = Scheme::all();
    assert!(entries.len() >= 13, "registry shrank to {}", entries.len());
    check_with(
        CheckConfig {
            cases: 4 * entries.len(),
            ..CheckConfig::default()
        },
        "registry_round_trip",
        |rng| {
            let scheme = entries[rng.below(entries.len())];
            if rng.chance(0.5) {
                scheme.with_granularity(Granularity::PerRow)
            } else {
                scheme
            }
        },
        |scheme| {
            let spec = scheme.to_string();
            let parsed = Scheme::parse(&spec)
                .map_err(|e| format!("canonical spec '{spec}' failed to parse: {e}"))?;
            prop_assert_eq!(parsed, *scheme, "spec '{}' did not round-trip", spec);
            prop_assert_eq!(parsed.to_string(), spec);
            Ok(())
        },
    );
}

/// `parse(render(s)) == s` survives random case/whitespace mangling: specs
/// arrive from CLIs and HTTP bodies, so `Scheme::parse` case-folds and trims
/// (including around the `@` granularity separator) instead of erroring.
#[test]
fn parse_survives_case_and_whitespace_mangling() {
    let entries = Scheme::all();
    check_with(
        CheckConfig {
            cases: 8 * entries.len(),
            ..CheckConfig::default()
        },
        "registry_case_whitespace_mangling",
        |rng| {
            let scheme = if rng.chance(0.5) {
                entries[rng.below(entries.len())].with_granularity(Granularity::PerRow)
            } else {
                entries[rng.below(entries.len())]
            };
            let canonical = scheme.to_string();
            // Random per-character case flips…
            let mut mangled: String = canonical
                .chars()
                .map(|c| {
                    if rng.chance(0.5) {
                        c.to_ascii_uppercase()
                    } else {
                        c
                    }
                })
                .collect();
            // …plus whitespace at the ends and around the '@' separator
            // (never inside a token — that must stay an error).
            let pad = |rng: &mut Rng| " ".repeat(rng.below(3));
            if let Some(at) = mangled.find('@') {
                let (base, suffix) = mangled.split_at(at);
                mangled = format!("{base}{}@{}{}", pad(rng), pad(rng), &suffix[1..]);
            }
            mangled = format!("{}{mangled}{}", pad(rng), pad(rng));
            (scheme, mangled)
        },
        |(scheme, mangled)| {
            let parsed = Scheme::parse(mangled)
                .map_err(|e| format!("mangled spec '{mangled}' failed to parse: {e}"))?;
            prop_assert_eq!(
                parsed,
                *scheme,
                "mangled spec '{}' parsed to the wrong scheme",
                mangled
            );
            prop_assert_eq!(parsed.to_string(), scheme.to_string());
            Ok(())
        },
    );
    // Whitespace inside a token is still rejected.
    for bad in ["oli ve-4bit", "uniform: 8", "olive-4bit@per- row"] {
        assert!(Scheme::parse(bad).is_err(), "'{bad}' should not parse");
    }
}

/// Random mutations of valid specs either parse to something that re-renders
/// canonically, or are rejected with an error that names the offending spec.
#[test]
fn malformed_specs_are_rejected_with_useful_errors() {
    let entries = Scheme::all();
    check(
        "registry_rejects_garbage",
        |rng| {
            let base = entries[rng.below(entries.len())].to_string();
            // Mutate: append junk, flip a char, or mangle the granularity.
            match rng.below(4) {
                0 => format!("{base}x"),
                1 => format!("{base}@per-col"),
                2 => base[..base.len() - 1].to_string(),
                _ => format!("no-such-scheme-{}", rng.below(100)),
            }
        },
        |spec| {
            match Scheme::parse(spec) {
                // Some mutations still hit a valid spec (e.g. "uniform:1" is
                // invalid but "gobo:4bi" is not a truncation that parses);
                // valid outcomes must still round-trip canonically.
                Ok(scheme) => {
                    let rendered = scheme.to_string();
                    prop_assert_eq!(Scheme::parse(&rendered).unwrap(), scheme);
                }
                Err(e) => {
                    let msg = e.to_string();
                    prop_assert!(
                        msg.contains(spec.trim()),
                        "error '{}' does not name the offending spec '{}'",
                        msg,
                        spec
                    );
                    prop_assert!(!e.reason().is_empty());
                }
            }
            Ok(())
        },
    );
}

/// A fixed list of malformed specs every registry version must reject.
#[test]
fn known_bad_specs_never_parse() {
    for bad in [
        "",
        " ",
        "olive",
        "olive-16bit",
        "uniform:1",
        "uniform:17",
        "uniform:",
        "uniform:4.5",
        "os:1bit",
        "os:9bit",
        "os:6",
        "ant:fp16-fallback",
        "gobo:5bit",
        "adafloat:6bit",
        "fp64",
        "olive-4bit@",
        "olive-4bit@row",
        "@per-row",
    ] {
        assert!(Scheme::parse(bad).is_err(), "'{bad}' should not parse");
    }
}

/// Per-row and per-tensor granularity agree bit-exactly on single-row
/// tensors, for every scheme in the registry.
#[test]
fn per_row_equals_per_tensor_on_single_row_tensors() {
    let entries = Scheme::all();
    check_with(
        CheckConfig {
            cases: 3 * entries.len(),
            ..CheckConfig::default()
        },
        "per_row_single_row",
        |rng| {
            let scheme = entries[rng.below(entries.len())];
            let cols = 1 + rng.below(96);
            let mut data = vec![0.0f32; cols];
            rng.fill_normal(&mut data, 0.0, 1.0);
            // Plant an outlier half the time to exercise the outlier paths.
            if rng.chance(0.5) && cols > 1 {
                let i = rng.below(cols);
                data[i] = 50.0;
            }
            let rank1 = rng.chance(0.5);
            (scheme, data, rank1)
        },
        |(scheme, data, rank1)| {
            let shape = if *rank1 {
                vec![data.len()]
            } else {
                vec![1, data.len()]
            };
            let t = Tensor::from_vec(shape, data.clone());
            let per_tensor = scheme.build().quantize_dequantize(&t);
            let per_row = scheme
                .with_granularity(Granularity::PerRow)
                .build()
                .quantize_dequantize(&t);
            prop_assert_eq!(
                per_tensor.data(),
                per_row.data(),
                "scheme '{}' disagrees between granularities on a single row",
                scheme
            );
            Ok(())
        },
    );
}

/// Multi-row per-row quantization equals quantizing each row separately.
#[test]
fn per_row_is_rowwise_application_of_the_base_scheme() {
    let mut rng = Rng::seed_from(0xA91);
    for spec in ["olive-4bit", "uniform:8", "gobo", "os:6bit"] {
        let scheme = Scheme::parse(spec).unwrap();
        let rows = 3;
        let cols = 64;
        let mut data = vec![0.0f32; rows * cols];
        rng.fill_normal(&mut data, 0.0, 1.0);
        data[10] = 30.0;
        data[cols + 5] = -60.0;
        let t = Tensor::from_vec(vec![rows, cols], data.clone());
        let whole = scheme
            .with_granularity(Granularity::PerRow)
            .build()
            .quantize_dequantize(&t);
        let base = scheme.build();
        for r in 0..rows {
            let row = Tensor::from_vec(vec![1, cols], data[r * cols..(r + 1) * cols].to_vec());
            let expect = base.quantize_dequantize(&row);
            assert_eq!(
                &whole.data()[r * cols..(r + 1) * cols],
                expect.data(),
                "{spec} row {r}"
            );
        }
    }
}

/// Acceptance criterion: every quantizer in olive-core and olive-baselines is
/// constructible from a spec string, and names/bit widths are consistent.
#[test]
fn registry_covers_core_and_baseline_quantizers() {
    let expect = [
        ("fp32", "FP32", 32.0),
        ("olive-4bit", "OliVe-4bit", 4.0),
        ("olive-4bit-flint", "OliVe-4bit-flint", 4.0),
        ("olive-8bit", "OliVe-8bit", 8.0),
        ("ant:4bit", "ANT-4bit", 4.0),
        ("ant:int8-fallback", "ANT", 4.0),
        ("gobo", "GOBO", 3.0),
        ("olaccel", "OLAccel", 4.0 + 0.03 * (16.0 + 32.0)),
        ("adafloat", "AdaFloat-8bit", 8.0),
        ("os:4bit", "OS-4bit", 4.0),
        ("os:6bit", "OS-6bit", 6.0),
        ("uniform:4", "int4", 4.0),
        ("uniform:8", "int8", 8.0),
    ];
    for (spec, name, bits) in expect {
        let q = Scheme::parse(spec).unwrap().build();
        assert_eq!(q.name(), name, "{spec}");
        assert!(
            (q.bits_per_element() - bits).abs() < 0.5,
            "{spec}: {} vs {}",
            q.bits_per_element(),
            bits
        );
    }
}
