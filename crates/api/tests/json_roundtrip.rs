//! Serialize→parse round-trip property tests for `olive_api::json`.
//!
//! The writer existed first (reports render through it); the parser was added
//! for the `olive-serve` wire protocol. These properties pin the two to each
//! other: anything [`JsonValue::render`] emits must parse back to an equal
//! value, including the string-escaping edge cases (control characters,
//! quotes, backslashes, non-ASCII) the writer-only tests never exercised.

use olive_api::json::JsonValue;
use olive_harness::check::{check, check_with, CheckConfig};
use olive_harness::{prop_assert, prop_assert_eq};
use olive_tensor::rng::Rng;

/// Characters the string generator draws from — deliberately heavy on JSON's
/// awkward cases: every escape shorthand, raw control chars, quotes,
/// backslashes, multi-byte UTF-8 (2/3/4-byte) and the `]`/`}`/`,`/`:`
/// structural characters that would expose span-tracking bugs.
const STRING_ALPHABET: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{8}',
    '\u{c}',
    '\u{0}',
    '\u{1}',
    '\u{1f}',
    '\u{7f}',
    'é',
    'ß',
    '中',
    '日',
    '🦀',
    '😀',
    '\u{ffff}',
    '\u{10000}',
    '{',
    '}',
    '[',
    ']',
    ',',
    ':',
    '-',
    '.',
];

fn gen_string(rng: &mut Rng) -> String {
    let len = rng.below(12);
    (0..len)
        .map(|_| STRING_ALPHABET[rng.below(STRING_ALPHABET.len())])
        .collect()
}

/// A random `JsonValue` tree of bounded depth. Scalars cover every variant;
/// finite `Num` values come from a wide log-uniform-ish mix including
/// negatives, zero and subnormal-ish magnitudes.
fn gen_value(rng: &mut Rng, depth: usize) -> JsonValue {
    let scalar_only = depth >= 4;
    match rng.below(if scalar_only { 6 } else { 8 }) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.chance(0.5)),
        2 => {
            // Finite f64s across many magnitudes, plus exact integer-valued
            // floats (which must re-parse as Int/UInt yet stay == via render).
            let exp = rng.uniform_range(-30.0, 30.0);
            let x = rng.normal(0.0, 1.0) * 10f64.powf(exp);
            JsonValue::Num(if x.is_finite() { x } else { 0.0 })
        }
        3 => JsonValue::Int(rng.next_u64() as i64),
        4 => JsonValue::UInt(rng.next_u64()),
        5 => JsonValue::Str(gen_string(rng)),
        6 => {
            let n = rng.below(5);
            JsonValue::Array((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.below(5);
            JsonValue::Object(
                (0..n)
                    .map(|_| (gen_string(rng), gen_value(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

/// `Num` whose payload is an exact integer renders without a decimal point,
/// so it re-parses as `Int`/`UInt`. That is the one intentional asymmetry;
/// equality modulo it is what serving needs (rendering is the wire format).
fn semantically_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Array(xs), JsonValue::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| semantically_eq(x, y))
        }
        (JsonValue::Object(xs), JsonValue::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && semantically_eq(va, vb))
        }
        (x, y) if x == y => true,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
    }
}

#[test]
fn render_parse_round_trips_semantically() {
    check("json_render_parse_round_trip", gen_value_root, |v| {
        let text = v.render();
        let parsed = JsonValue::parse(&text)
            .map_err(|e| format!("render output failed to parse: {e}\n{text}"))?;
        prop_assert!(
            semantically_eq(&parsed, v),
            "parsed value diverged\nrendered: {}\nparsed:   {:?}",
            text,
            parsed
        );
        // And rendering is a fixed point: parse(render(v)) renders the same.
        prop_assert_eq!(parsed.render(), text);
        Ok(())
    });
}

fn gen_value_root(rng: &mut Rng) -> JsonValue {
    gen_value(rng, 0)
}

#[test]
fn string_escaping_round_trips_exactly() {
    check_with(
        CheckConfig {
            cases: 512,
            ..CheckConfig::default()
        },
        "json_string_escape_round_trip",
        |rng| {
            // Longer, nastier strings than the tree generator produces.
            let len = rng.below(40);
            (0..len)
                .map(|_| STRING_ALPHABET[rng.below(STRING_ALPHABET.len())])
                .collect::<String>()
        },
        |s| {
            let v = JsonValue::Str(s.clone());
            let parsed = JsonValue::parse(&v.render()).map_err(|e| e.to_string())?;
            prop_assert_eq!(parsed, v, "string {:?} did not round-trip", s);
            Ok(())
        },
    );
}

#[test]
fn integer_values_round_trip_exactly() {
    check(
        "json_integer_round_trip",
        |rng| rng.next_u64(),
        |&u| {
            let as_uint =
                JsonValue::parse(&JsonValue::UInt(u).render()).map_err(|e| e.to_string())?;
            prop_assert!(as_uint.as_u64() == Some(u), "u64 {} mangled", u);
            let i = u as i64;
            let as_int =
                JsonValue::parse(&JsonValue::Int(i).render()).map_err(|e| e.to_string())?;
            prop_assert_eq!(as_int, JsonValue::Int(i));
            Ok(())
        },
    );
}
