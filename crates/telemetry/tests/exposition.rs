//! Exact-bytes regression test for the Prometheus text exposition.
//!
//! The `/metrics` byte order is part of the interface: families in name
//! order, children in rendered-label order, histograms as cumulative
//! `_bucket` + `_sum` + `_count`. This pin is what "byte-stable ordering"
//! means — if rendering changes shape, this test fails before a scraper
//! does.

use olive_telemetry::Registry;

#[test]
fn exposition_bytes_are_pinned() {
    let registry = Registry::new();

    // Registered deliberately out of name order, with labels deliberately
    // out of key order — the output must not care.
    let depth = registry.gauge("olive_queue_depth", "Jobs waiting in the batch queue.");
    depth.set(3);

    let b = registry.counter_with(
        "olive_http_requests_total",
        "Requests answered, by endpoint and status class.",
        &[("status", "4xx"), ("endpoint", "/v1/eval")],
    );
    let a = registry.counter_with(
        "olive_http_requests_total",
        "Requests answered, by endpoint and status class.",
        &[("endpoint", "/v1/eval"), ("status", "2xx")],
    );
    a.add(7);
    b.inc();

    let h = registry.histogram(
        "olive_batch_queue_wait_us",
        "Queue wait before batching, microseconds.",
        &[1, 4, 16],
    );
    for us in [0, 1, 3, 17] {
        h.observe(us);
    }

    let expected = "\
# HELP olive_batch_queue_wait_us Queue wait before batching, microseconds.
# TYPE olive_batch_queue_wait_us histogram
olive_batch_queue_wait_us_bucket{le=\"1\"} 2
olive_batch_queue_wait_us_bucket{le=\"4\"} 3
olive_batch_queue_wait_us_bucket{le=\"16\"} 3
olive_batch_queue_wait_us_bucket{le=\"+Inf\"} 4
olive_batch_queue_wait_us_sum 21
olive_batch_queue_wait_us_count 4
# HELP olive_http_requests_total Requests answered, by endpoint and status class.
# TYPE olive_http_requests_total counter
olive_http_requests_total{endpoint=\"/v1/eval\",status=\"2xx\"} 7
olive_http_requests_total{endpoint=\"/v1/eval\",status=\"4xx\"} 1
# HELP olive_queue_depth Jobs waiting in the batch queue.
# TYPE olive_queue_depth gauge
olive_queue_depth 3
";
    assert_eq!(registry.render(), expected);
}

#[test]
fn labelled_histograms_merge_le_into_the_label_block() {
    let registry = Registry::new();
    let h = registry.histogram_with(
        "olive_http_request_duration_us",
        "Request latency.",
        &[8],
        &[("endpoint", "/v1/generate")],
    );
    h.observe(5);
    h.observe(50);

    let expected = "\
# HELP olive_http_request_duration_us Request latency.
# TYPE olive_http_request_duration_us histogram
olive_http_request_duration_us_bucket{endpoint=\"/v1/generate\",le=\"8\"} 1
olive_http_request_duration_us_bucket{endpoint=\"/v1/generate\",le=\"+Inf\"} 2
olive_http_request_duration_us_sum{endpoint=\"/v1/generate\"} 55
olive_http_request_duration_us_count{endpoint=\"/v1/generate\"} 2
";
    assert_eq!(registry.render(), expected);
}

#[test]
fn rendering_is_stable_across_repeated_scrapes() {
    let registry = Registry::new();
    registry.counter("olive_a_total", "a").inc();
    registry.gauge("olive_b", "b").set(9);
    let first = registry.render();
    let second = registry.render();
    assert_eq!(first, second, "a scrape must not perturb the next scrape");
}

#[test]
fn label_values_are_escaped() {
    let registry = Registry::new();
    let c = registry.counter_with("olive_esc_total", "escapes", &[("path", "a\"b\\c\nd")]);
    c.inc();
    assert!(registry
        .render()
        .contains("olive_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
}
