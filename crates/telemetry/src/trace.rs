//! Request tracing: span events, a bounded in-memory flight recorder, and
//! an opt-in JSONL sink.
//!
//! A [`Span`] follows one request through its hops: the router stamps each
//! proxied request with an `x-olive-trace` id header (a worker generates
//! one if the header is absent), and every layer that touches the request
//! appends a named event — `accepted` → `queued` → `batched` →
//! `first-byte` → `done` — with a microsecond offset from span start.
//! Finished spans land in the [`Tracer`]'s ring buffer (newest-evicts-
//! oldest, bounded by `capacity`), where `GET /debug/trace?n=K` reads them
//! back, and optionally as one JSON line per span in the `--trace-log`
//! file.
//!
//! Tracing is strictly out-of-band: span events never alter response
//! bytes, and when the tracer is disabled [`Tracer::span`] returns `None`
//! so the serving layers skip every clock read.

use olive_runtime::lock_or_recover;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default flight-recorder depth: enough to hold the recent past of a busy
/// daemon without letting `/debug/trace` become a memory sink.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// A finished span: the trace id, the endpoint it hit, and its event
/// timeline as `(stage, microseconds-from-start)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub trace_id: String,
    pub endpoint: String,
    pub events: Vec<(String, u64)>,
}

impl TraceRecord {
    /// One-line JSON rendering, used both for the JSONL sink and for the
    /// `/debug/trace` response body. Keys in fixed order, events in
    /// recording order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace_id\":\"{}\",\"endpoint\":\"{}\",\"events\":[",
            escape_json(&self.trace_id),
            escape_json(&self.endpoint)
        );
        for (i, (stage, t_us)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"t_us\":{t_us}}}",
                escape_json(stage)
            );
        }
        out.push_str("]}");
        out
    }
}

struct TracerInner {
    capacity: usize,
    records: Mutex<VecDeque<TraceRecord>>,
    sink: Option<Mutex<BufWriter<File>>>,
    /// Trace-id entropy: a startup-time seed hashed with a counter. The
    /// clock read happens once, here, inside the telemetry layer.
    seed: u64,
    next: AtomicU64,
}

/// The per-process trace collector. Cloning shares the recorder.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer with the given recorder capacity and optional
    /// JSONL sink (opened in append mode).
    ///
    /// # Errors
    ///
    /// Propagates the sink-file open failure.
    pub fn new(capacity: usize, trace_log: Option<&Path>) -> io::Result<Tracer> {
        let sink = match trace_log {
            Some(path) => Some(Mutex::new(BufWriter::new(
                OpenOptions::new().create(true).append(true).open(path)?,
            ))),
            None => None,
        };
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            | 1;
        Ok(Tracer {
            inner: Some(Arc::new(TracerInner {
                capacity: capacity.max(1),
                records: Mutex::new(VecDeque::new()),
                sink,
                seed,
                next: AtomicU64::new(0),
            })),
        })
    }

    /// A tracer that records nothing and hands out no spans.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh 16-hex-digit trace id. Ids are unique per process run
    /// (counter) and distinct across runs (startup seed); they are
    /// correlation handles, not secrets.
    pub fn new_trace_id(&self) -> String {
        let (seed, n) = match &self.inner {
            Some(inner) => (inner.seed, inner.next.fetch_add(1, Ordering::Relaxed)),
            None => (0, 0),
        };
        format!("{:016x}", splitmix64(seed ^ splitmix64(n)))
    }

    /// Opens a span for one request, or `None` when tracing is disabled —
    /// the serving layers thread that `Option` through so a disabled
    /// tracer costs nothing per request.
    pub fn span(&self, trace_id: &str, endpoint: &str) -> Option<Arc<Span>> {
        self.inner.as_ref()?;
        Some(Arc::new(Span {
            tracer: self.clone(),
            trace_id: trace_id.to_string(),
            endpoint: endpoint.to_string(),
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
            finished: AtomicBool::new(false),
        }))
    }

    /// The newest `n` finished spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let records = lock_or_recover(&inner.records);
        let skip = records.len().saturating_sub(n);
        records.iter().skip(skip).cloned().collect()
    }

    fn record(&self, record: TraceRecord) {
        let Some(inner) = &self.inner else {
            return;
        };
        if let Some(sink) = &inner.sink {
            let mut writer = lock_or_recover(sink);
            // Telemetry must never take the service down: a full disk
            // degrades the sink, not the request.
            let _ = writeln!(writer, "{}", record.to_json());
            let _ = writer.flush();
        }
        let mut records = lock_or_recover(&inner.records);
        if records.len() == inner.capacity {
            records.pop_front();
        }
        records.push_back(record);
    }
}

/// One request's in-flight timeline. Shared as `Arc<Span>` between the
/// connection handler and the batching/scheduling layers; events may be
/// appended from any thread. The span finishes at most once — explicitly
/// via [`Span::finish`] (the connection handler does this after the last
/// response byte) or implicitly on drop, so abandoned requests still land
/// in the recorder.
pub struct Span {
    tracer: Tracer,
    trace_id: String,
    endpoint: String,
    start: Instant,
    events: Mutex<Vec<(String, u64)>>,
    finished: AtomicBool,
}

impl Span {
    /// The id this span travels under (`x-olive-trace`).
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Appends a named event at the current offset from span start.
    pub fn event(&self, stage: &str) {
        if self.finished.load(Ordering::Acquire) {
            return;
        }
        let t_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        lock_or_recover(&self.events).push((stage.to_string(), t_us));
    }

    /// Records the terminal `done` event and commits the span to the
    /// flight recorder (and sink). Idempotent.
    pub fn finish(&self) {
        self.event("done");
        if self.finished.swap(true, Ordering::AcqRel) {
            return;
        }
        let events = std::mem::take(&mut *lock_or_recover(&self.events));
        self.tracer.record(TraceRecord {
            trace_id: self.trace_id.clone(),
            endpoint: self.endpoint.clone(),
            events,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_their_event_timeline_in_order() {
        let tracer = Tracer::new(8, None).unwrap();
        let span = tracer.span("abc", "/v1/eval").unwrap();
        span.event("accepted");
        span.event("queued");
        span.finish();

        let recent = tracer.recent(10);
        assert_eq!(recent.len(), 1);
        let record = &recent[0];
        assert_eq!(record.trace_id, "abc");
        assert_eq!(record.endpoint, "/v1/eval");
        let stages: Vec<&str> = record.events.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(stages, ["accepted", "queued", "done"]);
        assert!(record.events.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn finish_is_idempotent_and_drop_finishes() {
        let tracer = Tracer::new(8, None).unwrap();
        let span = tracer.span("x", "/v1/eval").unwrap();
        span.finish();
        span.finish();
        drop(span);
        assert_eq!(tracer.recent(10).len(), 1);

        {
            let _implicit = tracer.span("y", "/v1/generate").unwrap();
        }
        assert_eq!(tracer.recent(10).len(), 2);
    }

    #[test]
    fn the_recorder_is_bounded_and_keeps_the_newest() {
        let tracer = Tracer::new(2, None).unwrap();
        for id in ["a", "b", "c"] {
            tracer.span(id, "/v1/eval").unwrap().finish();
        }
        let recent = tracer.recent(10);
        let ids: Vec<&str> = recent.iter().map(|r| r.trace_id.as_str()).collect();
        assert_eq!(ids, ["b", "c"]);
        // recent(n) truncates from the old end.
        assert_eq!(tracer.recent(1)[0].trace_id, "c");
    }

    #[test]
    fn disabled_tracer_hands_out_no_spans() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        assert!(tracer.span("abc", "/v1/eval").is_none());
        assert!(tracer.recent(10).is_empty());
    }

    #[test]
    fn trace_ids_are_sixteen_hex_and_distinct() {
        let tracer = Tracer::new(8, None).unwrap();
        let a = tracer.new_trace_id();
        let b = tracer.new_trace_id();
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
    }

    #[test]
    fn records_render_as_one_json_line() {
        let record = TraceRecord {
            trace_id: "00ff".into(),
            endpoint: "/v1/eval".into(),
            events: vec![("accepted".into(), 0), ("done".into(), 42)],
        };
        assert_eq!(
            record.to_json(),
            "{\"trace_id\":\"00ff\",\"endpoint\":\"/v1/eval\",\"events\":[\
             {\"stage\":\"accepted\",\"t_us\":0},{\"stage\":\"done\",\"t_us\":42}]}"
        );
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn jsonl_sink_appends_one_line_per_span() {
        let dir = std::env::temp_dir().join(format!("olive-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let tracer = Tracer::new(8, Some(&path)).unwrap();
            tracer.span("one", "/v1/eval").unwrap().finish();
            tracer.span("two", "/v1/generate").unwrap().finish();
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"trace_id\":\"one\""));
        assert!(lines[1].contains("\"endpoint\":\"/v1/generate\""));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
