//! Offline latency summaries for the load generators.
//!
//! The bench layer collects per-request latencies in nanoseconds and wants
//! the classic report: quantiles, the max, and a bucketed distribution. The
//! quantile estimator lives here (it used to be hand-rolled in
//! `olive_bench::loadgen`, which re-exports it for compatibility) and the
//! distribution is a detached [`Histogram`] — the same instrument type the
//! servers expose at `/metrics`, so a loadgen printout and a scrape bucket
//! the same way.

use crate::registry::{latency_buckets_us, Histogram};

/// Nearest-rank quantile over an ascending-sorted slice (0 when empty).
///
/// `q` is clamped to `[0, 1]`; `q = 0.5` is the median. Nearest-rank (not
/// interpolated) so the returned value is always an observed sample.
pub fn quantile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

/// The p50/p95/p99/max of a latency sample plus its bucketed distribution.
pub struct LatencySummary {
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    histogram: Histogram,
}

impl LatencySummary {
    /// Summarises an ascending-sorted nanosecond sample. The histogram uses
    /// the same log₂-ish microsecond bounds as the servers' latency
    /// metrics ([`latency_buckets_us`]).
    pub fn from_sorted_ns(sorted_ns: &[u64]) -> LatencySummary {
        let histogram = Histogram::detached(&latency_buckets_us());
        for &ns in sorted_ns {
            histogram.observe(ns / 1_000);
        }
        LatencySummary {
            p50_ns: quantile(sorted_ns, 0.50),
            p95_ns: quantile(sorted_ns, 0.95),
            p99_ns: quantile(sorted_ns, 0.99),
            max_ns: *sorted_ns.last().unwrap_or(&0),
            histogram,
        }
    }

    /// The distribution as `"le=<bound_us>µs <count>"`-shaped rows, one per
    /// non-empty cumulative bucket plus the `+Inf` total — the loadgen
    /// table's human rendering of what `/metrics` would expose.
    pub fn bucket_rows(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = self
            .histogram
            .cumulative_buckets()
            .into_iter()
            .filter(|&(_, cumulative)| cumulative > 0)
            .map(|(bound, cumulative)| (format!("≤ {bound} µs"), cumulative))
            .collect();
        rows.push(("≤ +Inf".to_string(), self.histogram.count()));
        rows.dedup_by(|a, b| a.1 == b.1);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_is_nearest_rank() {
        let sorted = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(quantile(&sorted, 0.50), 50);
        assert_eq!(quantile(&sorted, 0.95), 100);
        assert_eq!(quantile(&sorted, 0.0), 10);
        assert_eq!(quantile(&sorted, 1.0), 100);
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.99), 7);
    }

    #[test]
    fn summary_reports_max_and_cumulative_buckets() {
        // 1 µs, 3 µs, 5 µs, 1 ms as nanoseconds, sorted.
        let sorted = [1_000, 3_000, 5_000, 1_000_000];
        let summary = LatencySummary::from_sorted_ns(&sorted);
        assert_eq!(summary.max_ns, 1_000_000);
        assert_eq!(summary.p50_ns, 3_000);
        let rows = summary.bucket_rows();
        // Cumulative counts never decrease and end at the sample size.
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(rows.last().unwrap().1, 4);
        assert_eq!(rows[0], ("≤ 1 µs".to_string(), 1));
    }
}
