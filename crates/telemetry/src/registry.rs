//! The metrics registry: typed instruments and Prometheus text exposition.
//!
//! Three instrument kinds, all `u64`-valued and lock-free on the hot path:
//!
//! * [`Counter`] — monotonic event count (`_total` names by convention).
//! * [`Gauge`] — a value that goes up and down (occupancy, pool levels).
//! * [`Histogram`] — fixed-bucket distribution; bucket bounds are chosen at
//!   registration (see [`latency_buckets_us`] for the log₂-ish latency
//!   preset) and rendered cumulatively per the Prometheus convention.
//!
//! Registration takes the registry's one mutex and hands back a cheap
//! `Arc`-backed handle; recording through a handle is a relaxed atomic
//! op and never locks. Exposition ([`Registry::render`]) walks two
//! `BTreeMap` levels — family name, then rendered label set — so the
//! output byte order is a function of the metric names alone, never of
//! registration or arrival order. That stability is part of the contract
//! and is pinned by an exact-bytes regression test.

use olive_runtime::lock_or_recover;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Log₂-ish latency bucket upper bounds in microseconds: powers of four
/// from 1 µs to ~4.2 s. Twelve buckets cover everything from a scheduler
/// tick to a pathological tail request at ~2 significant bits of
/// resolution, which is plenty for p50/p99-style questions.
pub fn latency_buckets_us() -> Vec<u64> {
    (0..12).map(|i| 1u64 << (2 * i)).collect()
}

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (detached tests/tools).
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a `u64` that can be set to any value. Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (detached tests/tools).
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A started (or deliberately inert) wall-clock stopwatch.
///
/// This is the **only** sanctioned wall-clock read in the serving stack
/// outside the bench layer: callers create a `Stopwatch` where an interval
/// starts and feed it to [`Histogram::observe_elapsed`] where it ends, so
/// `Instant` never appears in request-path code and the
/// `no-wallclock-in-deterministic-paths` lint keeps holding there. A
/// disabled stopwatch ([`Stopwatch::disabled`], or `start_if(false)`)
/// records nothing and costs a branch.
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// A running stopwatch.
    pub fn started() -> Stopwatch {
        Stopwatch(Some(Instant::now()))
    }

    /// A stopwatch that never reads the clock and never records.
    pub fn disabled() -> Stopwatch {
        Stopwatch(None)
    }

    /// Running when `enabled`, inert otherwise.
    pub fn start_if(enabled: bool) -> Stopwatch {
        if enabled {
            Stopwatch::started()
        } else {
            Stopwatch::disabled()
        }
    }

    /// Whether this stopwatch is actually timing (false when inert) —
    /// callers use it to start sibling stopwatches under the same switch.
    pub fn is_running(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds since start, saturated to `u64`; `None` when inert.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.0
            .map(|started| u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

struct HistogramCore {
    /// Upper bounds (inclusive), strictly increasing; the implicit `+Inf`
    /// bucket is `counts.last()`.
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts, one slot longer than `bounds`.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram. Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry, e.g. for summarising a
    /// load-generator's latency samples without running a server.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing — bucket
    /// layout is static configuration, not data.
    pub fn detached(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            counts,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let core = &self.0;
        let slot = core.bounds.partition_point(|&bound| bound < value);
        core.counts[slot].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the stopwatch's elapsed microseconds; a no-op for an inert
    /// stopwatch, which is what makes "telemetry off" free on the hot path.
    pub fn observe_elapsed(&self, stopwatch: &Stopwatch) {
        if let Some(us) = stopwatch.elapsed_us() {
            self.observe(us);
        }
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// `(upper_bound, cumulative_count)` per finite bucket, in bound order.
    /// The `+Inf` total is [`Histogram::count`].
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let core = &self.0;
        let mut running = 0u64;
        core.bounds
            .iter()
            .zip(core.counts.iter())
            .map(|(&bound, slot)| {
                running += slot.load(Ordering::Relaxed);
                (bound, running)
            })
            .collect()
    }
}

/// Instrument kinds, also the `# TYPE` token in the exposition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Child {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the rendered label block (`{a="x",b="y"}`, or `""` for an
    /// unlabelled instrument) so exposition order falls out of the map.
    children: BTreeMap<String, Child>,
}

/// A named collection of instruments with Prometheus text exposition.
///
/// One registry per process; both daemons expose theirs at `GET /metrics`.
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or re-fetches) a counter with the given label pairs.
    /// Registration is idempotent per `(name, labels)`: a second call hands
    /// back a handle to the same cell.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind, or on
    /// an invalid metric/label name — instrument layout is static
    /// configuration established at startup, so a mismatch is a programming
    /// error, not a runtime condition.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let child = self.child(name, help, Kind::Counter, labels, None);
        match child {
            Child::Counter(c) => c,
            _ => unreachable!("registry returned a non-counter for a counter family"),
        }
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Labelled-gauge variant of [`Registry::gauge`]; same idempotence and
    /// panic contract as [`Registry::counter_with`].
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let child = self.child(name, help, Kind::Gauge, labels, None);
        match child {
            Child::Gauge(g) => g,
            _ => unreachable!("registry returned a non-gauge for a gauge family"),
        }
    }

    /// Registers (or re-fetches) an unlabelled histogram with the given
    /// bucket upper bounds (see [`latency_buckets_us`]).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Labelled-histogram variant; same idempotence and panic contract as
    /// [`Registry::counter_with`].
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let child = self.child(name, help, Kind::Histogram, labels, Some(bounds));
        match child {
            Child::Histogram(h) => h,
            _ => unreachable!("registry returned a non-histogram for a histogram family"),
        }
    }

    fn child(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        bounds: Option<&[u64]>,
    ) -> Child {
        assert!(valid_name(name), "invalid metric name '{name}'");
        for (key, _) in labels {
            assert!(valid_name(key), "invalid label name '{key}' on '{name}'");
        }
        let label_key = render_labels(labels);
        let mut families = lock_or_recover(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            children: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric '{name}' is a {} but was re-registered as a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let child = family
            .children
            .entry(label_key)
            .or_insert_with(|| match kind {
                Kind::Counter => Child::Counter(Counter::detached()),
                Kind::Gauge => Child::Gauge(Gauge::detached()),
                Kind::Histogram => Child::Histogram(Histogram::detached(bounds.unwrap_or(&[1]))),
            });
        match child {
            Child::Counter(c) => Child::Counter(c.clone()),
            Child::Gauge(g) => Child::Gauge(g.clone()),
            Child::Histogram(h) => Child::Histogram(h.clone()),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`): families in name order, children in
    /// rendered-label order, histograms as cumulative `_bucket` series plus
    /// `_sum` and `_count`. Byte-stable for a fixed set of values.
    pub fn render(&self) -> String {
        let families = lock_or_recover(&self.families);
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (label_key, child) in &family.children {
                match child {
                    Child::Counter(c) => {
                        let _ = writeln!(out, "{name}{label_key} {}", c.get());
                    }
                    Child::Gauge(g) => {
                        let _ = writeln!(out, "{name}{label_key} {}", g.get());
                    }
                    Child::Histogram(h) => render_histogram(&mut out, name, label_key, h),
                }
            }
        }
        out
    }

    /// Every `(labels, value)` of a counter family, in rendered-label
    /// order. Empty when the family doesn't exist or isn't counters. This
    /// is how scrape-independent consumers (the `/healthz` JSON) read a
    /// labelled family back out of the registry.
    pub fn counter_values(&self, name: &str) -> Vec<(Vec<(String, String)>, u64)> {
        let families = lock_or_recover(&self.families);
        let Some(family) = families.get(name) else {
            return Vec::new();
        };
        family
            .children
            .iter()
            .filter_map(|(key, child)| match child {
                Child::Counter(c) => Some((parse_labels(key), c.get())),
                _ => None,
            })
            .collect()
    }
}

fn render_histogram(out: &mut String, name: &str, label_key: &str, hist: &Histogram) {
    // `le` joins any existing labels inside one brace block.
    let prefix = if label_key.is_empty() {
        String::new()
    } else {
        // "{a=\"x\"}" -> "a=\"x\","
        format!("{},", &label_key[1..label_key.len() - 1])
    };
    for (bound, cumulative) in hist.cumulative_buckets() {
        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{bound}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {}", hist.count());
    let _ = writeln!(out, "{name}_sum{label_key} {}", hist.sum());
    let _ = writeln!(out, "{name}_count{label_key} {}", hist.count());
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — the portable subset of Prometheus names (no
/// colons: those are reserved for recording rules).
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Renders label pairs as `{a="x",b="y"}` with keys sorted, or `""` for
/// none. Sorted keys make the rendered string a canonical identity for the
/// label set, which both dedups registration and fixes exposition order.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let sorted: BTreeMap<&str, &str> = labels.iter().copied().collect();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Inverse of [`render_labels`] for registry read-back; tolerant of the
/// exact strings [`render_labels`] produces and nothing more.
fn parse_labels(rendered: &str) -> Vec<(String, String)> {
    if rendered.is_empty() {
        return Vec::new();
    }
    let inner = &rendered[1..rendered.len() - 1];
    inner
        .split(',')
        .filter_map(|pair| {
            let (key, quoted) = pair.split_once('=')?;
            let value = quoted.strip_prefix('"')?.strip_suffix('"')?;
            Some((
                key.to_string(),
                value
                    .replace("\\\"", "\"")
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\"),
            ))
        })
        .collect()
}

fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let registry = Registry::new();
        let c = registry.counter("olive_test_total", "test counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent re-registration hands back the same cell.
        assert_eq!(
            registry.counter("olive_test_total", "test counter").get(),
            5
        );

        let g = registry.gauge("olive_test_depth", "test gauge");
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(2);
        assert_eq!(registry.gauge("olive_test_depth", "ignored").get(), 2);
    }

    #[test]
    fn labelled_children_are_distinct_cells() {
        let registry = Registry::new();
        let a = registry.counter_with("olive_hits_total", "hits", &[("worker", "a")]);
        let b = registry.counter_with("olive_hits_total", "hits", &[("worker", "b")]);
        a.inc();
        a.inc();
        b.inc();
        let values = registry.counter_values("olive_hits_total");
        assert_eq!(
            values,
            vec![
                (vec![("worker".into(), "a".into())], 2),
                (vec![("worker".into(), "b".into())], 1),
            ]
        );
    }

    #[test]
    fn histogram_buckets_are_inclusive_and_cumulative() {
        let h = Histogram::detached(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 100] {
            h.observe(v);
        }
        // ≤1: {0,1}; ≤4: +{2,4}; ≤16: +{5}; +Inf: +{100}.
        assert_eq!(h.cumulative_buckets(), vec![(1, 2), (4, 4), (16, 5)]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 112);
        assert_eq!(h.max(), 100);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics_at_registration() {
        let registry = Registry::new();
        let _ = registry.counter("olive_thing", "a counter");
        let _ = registry.gauge("olive_thing", "now a gauge");
    }

    #[test]
    fn stopwatch_disabled_records_nothing() {
        let h = Histogram::detached(&[1]);
        h.observe_elapsed(&Stopwatch::disabled());
        assert_eq!(h.count(), 0);
        h.observe_elapsed(&Stopwatch::start_if(true));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn latency_buckets_are_log2ish_and_increasing() {
        let bounds = latency_buckets_us();
        assert_eq!(bounds.first(), Some(&1));
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(*bounds.last().unwrap() >= 1_000_000, "must cover ≥ 1 s");
    }
}
