//! `olive-telemetry`: metrics registry, Prometheus text exposition, and
//! request tracing for the serving stack — `std`-only, like everything
//! else in this workspace.
//!
//! The serving layers (`olive-serve`, `olive-router`) each own one
//! [`Telemetry`] bundle: a [`Registry`] of typed instruments rendered at
//! `GET /metrics`, and a [`Tracer`] whose spans follow individual requests
//! (`x-olive-trace` header) through accept → queue → batch → first byte →
//! done, readable at `GET /debug/trace` or as a `--trace-log` JSONL file.
//! See `METRICS.md` next to this crate for the full metric reference.
//!
//! # Out-of-band by construction
//!
//! The serving determinism contract says response bytes are a function of
//! the request alone — so telemetry must be provably unable to change
//! them. Three design rules enforce that:
//!
//! * **Instruments carry no data back.** Counters, gauges and histograms
//!   are write-mostly atomics; nothing in the request path reads them to
//!   make a decision.
//! * **The clock is quarantined.** Wall-clock reads happen only inside
//!   this crate ([`Stopwatch`], span timestamps); the
//!   `no-wallclock-in-deterministic-paths` lint still bans `Instant`/
//!   `SystemTime` from the serving crates, so timing can only flow through
//!   these types.
//! * **Off means off.** With telemetry disabled the layers still count
//!   events (the `/healthz` gauges are registry-backed and must keep
//!   working) but every stopwatch is inert and [`Tracer::span`] returns
//!   `None` — and a regression test proves response bodies are
//!   byte-identical either way.

pub mod registry;
pub mod summary;
pub mod trace;

pub use registry::{latency_buckets_us, Counter, Gauge, Histogram, Registry, Stopwatch};
pub use summary::{quantile, LatencySummary};
pub use trace::{Span, TraceRecord, Tracer, DEFAULT_TRACE_CAPACITY};

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// How a daemon wants its telemetry configured (CLI flags map 1:1).
#[derive(Clone, Debug)]
pub struct TelemetryOptions {
    /// When false (`--no-telemetry`): no latency observations, no tracing.
    /// Event counters and occupancy gauges still run — `/healthz` and the
    /// counting half of `/metrics` are load-bearing either way.
    pub enabled: bool,
    /// `--trace-log <path>`: append one JSON line per finished span.
    pub trace_log: Option<PathBuf>,
    /// Flight-recorder depth for `GET /debug/trace`.
    pub trace_capacity: usize,
}

impl Default for TelemetryOptions {
    fn default() -> TelemetryOptions {
        TelemetryOptions {
            enabled: true,
            trace_log: None,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// One process's telemetry: a shared [`Registry`] plus a [`Tracer`].
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<Registry>,
    tracer: Tracer,
    enabled: bool,
}

impl Telemetry {
    /// Builds the bundle from options.
    ///
    /// # Errors
    ///
    /// Propagates the `trace_log` open failure (bad path, permissions).
    pub fn new(options: &TelemetryOptions) -> io::Result<Telemetry> {
        let tracer = if options.enabled {
            Tracer::new(options.trace_capacity, options.trace_log.as_deref())?
        } else {
            Tracer::disabled()
        };
        Ok(Telemetry {
            registry: Arc::new(Registry::new()),
            tracer,
            enabled: options.enabled,
        })
    }

    /// An enabled bundle with defaults (fresh registry, no sink) — what
    /// in-process servers in tests and benches use.
    pub fn detached() -> Telemetry {
        Telemetry::new(&TelemetryOptions::default())
            .expect("default telemetry options cannot fail: no sink file to open")
    }

    /// A bundle with timing and tracing off; counters/gauges still work.
    pub fn disabled() -> Telemetry {
        Telemetry {
            registry: Arc::new(Registry::new()),
            tracer: Tracer::disabled(),
            enabled: false,
        }
    }

    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether latency observation and tracing are on.
    pub fn timing_enabled(&self) -> bool {
        self.enabled
    }

    /// A stopwatch that runs only when timing is enabled — the one-liner
    /// the serving layers use at every interval start.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch::start_if(self.enabled)
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_still_counts_but_never_times() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.timing_enabled());
        assert!(telemetry.stopwatch().elapsed_us().is_none());
        assert!(telemetry.tracer().span("id", "/v1/eval").is_none());

        // Counters keep working: /healthz depends on them.
        let served = telemetry.registry().counter("olive_served_total", "served");
        served.inc();
        assert_eq!(served.get(), 1);
        assert!(telemetry
            .registry()
            .render()
            .contains("olive_served_total 1"));
    }

    #[test]
    fn detached_telemetry_times_and_traces() {
        let telemetry = Telemetry::detached();
        assert!(telemetry.timing_enabled());
        assert!(telemetry.stopwatch().elapsed_us().is_some());
        let span = telemetry.tracer().span("id", "/v1/eval").unwrap();
        span.finish();
        assert_eq!(telemetry.tracer().recent(1).len(), 1);
    }
}
