//! End-to-end engine tests over a real directory tree, plus the acceptance
//! gate: the workspace itself must lint clean with the checked-in lint.toml.

use olive_lint::{engine, Config};
use std::path::{Path, PathBuf};

/// Builds a throwaway tree under the target dir (unique per test name) and
/// cleans it up on drop.
struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(name: &str) -> TempTree {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("lint-e2e-{name}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create temp tree");
        TempTree { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).expect("create parent dirs");
        std::fs::write(path, contents).expect("write file");
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn walks_the_tree_and_reports_sorted_violations() {
    let tree = TempTree::new("walk");
    tree.write(
        "crates/a/src/lib.rs",
        "pub fn f() { std::thread::spawn(|| {}); }\n",
    );
    tree.write(
        "crates/b/src/lib.rs",
        "pub fn g() -> usize { std::thread::available_parallelism().map_or(1, |n| n.get()) }\n",
    );
    // Skipped locations: tests/ dirs and the target/ build dir.
    tree.write(
        "crates/a/tests/t.rs",
        "fn t() { std::thread::spawn(|| {}); }\n",
    );
    tree.write(
        "target/debug/gen.rs",
        "fn t() { std::thread::spawn(|| {}); }\n",
    );
    let report = engine::lint_workspace(&tree.root, &Config::default()).expect("walk succeeds");
    let got: Vec<(String, String)> = report
        .violations
        .iter()
        .map(|v| (v.path.clone(), v.rule.clone()))
        .collect();
    assert_eq!(
        got,
        vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "no-spawn-outside-runtime".to_string()
            ),
            (
                "crates/b/src/lib.rs".to_string(),
                "no-available-parallelism".to_string()
            ),
        ]
    );
    assert_eq!(
        report.files_scanned, 3,
        "target/ must be pruned from the walk"
    );
}

#[test]
fn dead_config_allow_entries_are_reported() {
    let tree = TempTree::new("dead-allow");
    tree.write("src/lib.rs", "pub fn clean() {}\n");
    let config =
        Config::parse("[rule.no-spawn-outside-runtime]\nallow = [\"src/never_matches.rs\"]\n")
            .expect("config parses");
    let report = engine::lint_workspace(&tree.root, &config).expect("walk succeeds");
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let dead = &report.violations[0];
    assert_eq!(dead.path, "lint.toml");
    assert_eq!(dead.rule, engine::SUPPRESSION_RULE);
    assert!(
        dead.message.contains("never_matches.rs"),
        "{}",
        dead.message
    );
}

#[test]
fn live_config_allow_entries_are_not_reported() {
    let tree = TempTree::new("live-allow");
    tree.write(
        "src/spawny.rs",
        "pub fn f() { std::thread::spawn(|| {}); }\n",
    );
    let config = Config::parse("[rule.no-spawn-outside-runtime]\nallow = [\"src/spawny.rs\"]\n")
        .expect("config parses");
    let report = engine::lint_workspace(&tree.root, &config).expect("walk succeeds");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn config_skip_prunes_directories() {
    let tree = TempTree::new("skip");
    tree.write(
        "vendored/bad.rs",
        "pub fn f() { std::thread::spawn(|| {}); }\n",
    );
    tree.write("src/lib.rs", "pub fn clean() {}\n");
    let config = Config::parse("[lint]\nskip = [\"vendored\"]\n").expect("config parses");
    let report = engine::lint_workspace(&tree.root, &config).expect("walk succeeds");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.files_scanned, 1);
}

/// The acceptance gate, enforced by `cargo test` itself: linting this
/// workspace with its checked-in lint.toml finds nothing — no unsuppressed
/// violations, no unused suppressions, no dead allow entries.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("checked-in lint.toml");
    let config = Config::parse(&config_text).expect("lint.toml parses");
    let report = engine::lint_workspace(&root, &config).expect("workspace walk succeeds");
    assert!(
        report.violations.is_empty(),
        "the workspace must lint clean:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
}
