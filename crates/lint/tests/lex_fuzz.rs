//! Property tests: the lexer is total over arbitrary bytes.
//!
//! `olive-lint` runs over every workspace file on every CI push; a panic on
//! weird input would take the whole gate down. These properties hammer the
//! lexer with byte soup and with *mutated real Rust* (the nastier case: mostly
//! valid syntax with literals and comments cut mid-way), checking it never
//! panics, never loses track of line numbers, and stays deterministic.

use olive_harness::{check, gen, prop_assert, Rng};
use olive_lint::lexer::{lex, Tok};

/// A realistic seed corpus: the constructs the lexer special-cases.
const CORPUS: &str = r####"
//! doc comment with "string" and 'c'
use std::collections::BTreeMap;

/* block /* nested */ comment */
fn generic<'a, T: AsRef<[u8]>>(x: &'a T) -> char {
    let s = r#"raw "quoted" string"#;
    let b = b"bytes\x00";
    let r = br##"very raw"##;
    let c = 'x';
    let esc = '\'';
    let n = 1_000.5e-3;
    let hex = 0xFFu32;
    for i in 0..n as usize {
        let _ = s.as_bytes()[i % 2] / 2;
    }
    let r#match = "raw ident";
    c
}
"####;

fn check_invariants(bytes: &[u8]) -> Result<(), String> {
    let tokens: Vec<Tok> = lex(bytes); // must not panic, whatever the input
    let mut previous_line = 1u32;
    for t in &tokens {
        prop_assert!(
            t.line >= previous_line,
            "line numbers regressed: {} after {previous_line} ({:?})",
            t.line,
            t.kind
        );
        prop_assert!(!t.text.is_empty(), "empty token of kind {:?}", t.kind);
        previous_line = t.line;
    }
    let newlines = bytes.iter().filter(|&&b| b == b'\n').count() as u32;
    prop_assert!(
        previous_line <= newlines + 1,
        "last token line {previous_line} beyond the {newlines}-newline input"
    );
    let again = lex(bytes);
    prop_assert!(tokens == again, "lexing is not deterministic");
    Ok(())
}

#[test]
fn lexing_never_panics_on_arbitrary_bytes() {
    check(
        "lex total over byte soup",
        gen::vec_of(|rng: &mut Rng| rng.below(256) as u8, 0, 512),
        |bytes| check_invariants(bytes),
    );
}

#[test]
fn lexing_never_panics_on_mutated_rust_source() {
    check(
        "lex total over mutated Rust",
        |rng: &mut Rng| {
            let mut bytes = CORPUS.as_bytes().to_vec();
            // Truncate somewhere (cuts literals/comments mid-way)…
            let cut = rng.below(bytes.len() + 1);
            bytes.truncate(cut.max(1));
            // …then flip a handful of bytes to delimiters and soup.
            let delimiters = b"\"'#/r*b\\\n{}[]();:!.";
            for _ in 0..rng.below(8) {
                let at = rng.below(bytes.len());
                let with = delimiters[rng.below(delimiters.len())];
                bytes[at] = with;
            }
            bytes
        },
        |bytes| check_invariants(bytes),
    );
}

#[test]
fn lexing_the_corpus_is_lossless_on_line_count() {
    // On clean input every non-whitespace byte lands in some token.
    let tokens = lex(CORPUS.as_bytes());
    let token_bytes: usize = tokens.iter().map(|t| t.text.len()).sum();
    let non_ws = CORPUS.bytes().filter(|b| !b.is_ascii_whitespace()).count();
    // Comments/strings may contain whitespace, so token bytes >= non-ws count.
    assert!(
        token_bytes >= non_ws,
        "tokens cover {token_bytes} bytes, source has {non_ws} non-whitespace"
    );
}
