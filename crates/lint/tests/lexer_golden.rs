//! Golden token-stream tests for the corners of Rust syntax the lexer
//! exists to get right — each case is one a plain text search would misread.

use olive_lint::lexer::{lex, TokKind};

fn kinds(source: &str) -> Vec<(TokKind, String)> {
    lex(source.as_bytes())
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

#[test]
fn raw_strings_with_hashes_swallow_quotes_and_fake_terminators() {
    // The "# inside must not terminate a two-hash raw string.
    let toks = kinds(r###"let s = r##"contains "# and "quotes""##;"###);
    let strings: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
    assert_eq!(strings.len(), 1, "{toks:?}");
    assert_eq!(strings[0].1, r###"r##"contains "# and "quotes""##"###);
    assert!(
        !toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "quotes"),
        "raw-string contents leaked into idents: {toks:?}"
    );
}

#[test]
fn raw_string_contents_are_opaque_to_rules() {
    let toks = kinds(r##"let s = r#"HashMap thread::spawn .lock().unwrap()"#;"##);
    assert!(
        !toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && (t == "HashMap" || t == "spawn")),
        "{toks:?}"
    );
}

#[test]
fn nested_block_comments_close_at_the_matching_terminator() {
    let toks = kinds("/* outer /* inner */ still comment */ ident");
    assert_eq!(
        toks,
        vec![
            (
                TokKind::Comment,
                "/* outer /* inner */ still comment */".to_string()
            ),
            (TokKind::Ident, "ident".to_string()),
        ]
    );
}

#[test]
fn lifetimes_and_char_literals_disambiguate() {
    // 'a in a generic list is a lifetime; 'a' is a char; '\'' is an escape.
    let toks = kinds(r"fn f<'a>(x: &'a str) -> char { 'a' } const Q: char = '\'';");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Lifetime)
        .map(|(_, t)| t.as_str())
        .collect();
    let chars: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Char)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a"]);
    assert_eq!(chars, vec!["'a'", r"'\''"]);
}

#[test]
fn static_lifetime_is_not_a_char() {
    let toks = kinds("fn f() -> &'static str { \"x\" }");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Lifetime && t == "'static"));
    assert!(!toks.iter().any(|(k, _)| *k == TokKind::Char));
}

#[test]
fn byte_and_c_string_flavours_all_lex_as_strings() {
    for source in [
        r#"b"bytes""#,
        r##"br#"raw bytes "quoted""#"##,
        r#"c"c string""#,
        r##"cr#"raw c"#"##,
    ] {
        let toks = kinds(source);
        assert_eq!(
            toks,
            vec![(TokKind::Str, source.to_string())],
            "{source} must lex as one string"
        );
    }
    assert_eq!(kinds("b'x'"), vec![(TokKind::Char, "b'x'".to_string())]);
}

#[test]
fn byte_prefix_does_not_eat_ordinary_identifiers() {
    // `break`/`crate` start with the b/c string prefixes; `b` and `c` alone
    // are plain idents.
    let toks = kinds("break; crate::b; c + b");
    let idents: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Ident)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(idents, vec!["break", "crate", "b", "c", "b"]);
}

#[test]
fn raw_identifiers_are_not_raw_strings() {
    let toks = kinds(r#"let r#match = r#fn; let s = r"raw";"#);
    let raw_idents: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::RawIdent)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(raw_idents, vec!["r#match", "r#fn"]);
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Str && t == "r\"raw\""));
}

#[test]
fn string_escapes_do_not_terminate_early() {
    let toks = kinds(r#"let s = "quote \" backslash \\"; next"#);
    assert_eq!(
        toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
        1,
        "{toks:?}"
    );
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Ident && t == "next"));
}

#[test]
fn numbers_do_not_swallow_ranges_or_methods() {
    let toks = kinds("for i in 0..10 { x = 1.5e-3; y = 2.max(3); }");
    let nums: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Num)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(nums, vec!["0", "10", "1.5e-3", "2", "3"]);
}

#[test]
fn doc_comments_are_comments_and_keep_their_text() {
    let toks = kinds("/// says HashMap\nfn f() {}");
    assert_eq!(toks[0].0, TokKind::Comment);
    assert!(toks[0].1.contains("HashMap"));
    assert!(
        !toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "HashMap"),
        "comment text must not produce idents"
    );
}

#[test]
fn unterminated_constructs_run_to_eof_without_panicking() {
    for source in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
        let toks = lex(source.as_bytes());
        assert!(!toks.is_empty(), "{source:?} must still produce tokens");
    }
}

#[test]
fn line_numbers_point_at_token_starts() {
    let toks = lex(b"a\n/* multi\nline */ b\n\"s\ntr\" c");
    let find = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
    assert_eq!(find("a"), 1);
    assert_eq!(find("b"), 3, "token after a multi-line comment");
    assert_eq!(find("c"), 5, "token after a multi-line string");
}
