//! The lint engine: file discovery, test-region detection, suppression
//! accounting, and rule dispatch.
//!
//! A violation survives to the report only if it clears four gates:
//!
//! 1. the file is production code (anything under a `tests/`, `benches/` or
//!    `examples/` directory is skipped outright);
//! 2. the site is not inside a `#[cfg(test)]` / `#[test]` item (tests may
//!    spawn threads, unwrap locks, and index at will);
//! 3. no inline suppression covers it — an `olive-lint:` comment of the form
//!    `allow(<rule>): <reason>` on the same line or the line above (the
//!    reason is mandatory; see `RULES.md` for the exact syntax);
//! 4. no `allow` path entry in `lint.toml` exempts the file for that rule.
//!
//! Suppressions are load-bearing state, not annotations: one that stops
//! matching anything (inline or in `lint.toml`) is itself reported, so the
//! set of escape hatches can only shrink unless a human re-justifies it.

use crate::config::{path_matches, Config};
use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{is_rule_name, RULES};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The pseudo-rule name used for suppression bookkeeping errors (malformed
/// or unused suppressions, dead `lint.toml` allow entries).
pub const SUPPRESSION_RULE: &str = "suppression";

/// A reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Root-relative, forward-slash path (`lint.toml` for config errors).
    pub path: String,
    /// 1-based line (0 for file-level/config errors).
    pub line: u32,
    /// The rule name, or [`SUPPRESSION_RULE`].
    pub rule: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        }
    }
}

/// Per-file lint result, before workspace-level aggregation.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations attributed to this file (path already filled in).
    pub violations: Vec<Violation>,
    /// `(rule, allow_entry)` pairs this file consumed — used to detect dead
    /// `lint.toml` entries at the workspace level.
    pub allow_hits: Vec<(String, String)>,
}

/// Workspace-level lint result.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All violations, sorted by path, line, rule.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// An inline suppression parsed from a comment token.
struct Suppression {
    rule: String,
    line: u32,
    used: bool,
}

/// True when any path component marks the file as test-only.
fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples"))
}

/// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items, found
/// lexically: match the attribute, then skip attributes, then extend to the
/// item's closing brace (balanced) or terminating semicolon.
fn test_regions(code: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct("#") && code.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let (attr, after) = read_attr(code, i + 2);
        if !is_test_attr(&attr) {
            i = after;
            continue;
        }
        let start_line = code[i].line;
        // Skip any further attributes stacked on the same item.
        let mut j = after;
        while code.get(j).is_some_and(|t| t.is_punct("#"))
            && code.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            j = read_attr(code, j + 2).1;
        }
        // Extend to the end of the item: the first `;` before any brace, or
        // the matching `}` of the first `{`.
        let mut end_line = u32::MAX; // unterminated item: shield to EOF
        while let Some(t) = code.get(j) {
            if t.is_punct(";") {
                end_line = t.line;
                break;
            }
            if t.is_punct("{") {
                let mut depth = 1usize;
                j += 1;
                while let Some(u) = code.get(j) {
                    if u.is_punct("{") {
                        depth += 1;
                    } else if u.is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            end_line = u.line;
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Reads attribute tokens starting just inside `#[`; returns the inner
/// tokens and the index just past the matching `]`.
fn read_attr(code: &[Tok], start: usize) -> (Vec<&Tok>, usize) {
    let mut depth = 1usize;
    let mut inner = Vec::new();
    let mut i = start;
    while let Some(t) = code.get(i) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (inner, i + 1);
            }
        }
        inner.push(t);
        i += 1;
    }
    (inner, i)
}

/// Exactly `cfg(test)` or `test` — `cfg(not(test))` is production code.
fn is_test_attr(attr: &[&Tok]) -> bool {
    match attr {
        [t] => t.is_ident("test"),
        [c, open, t, close] => {
            c.is_ident("cfg") && open.is_punct("(") && t.is_ident("test") && close.is_punct(")")
        }
        _ => false,
    }
}

fn in_regions(line: u32, regions: &[(u32, u32)]) -> bool {
    regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// The inline suppression marker. Built by concatenation so this crate's own
/// comments never contain the literal marker (which would register as a real
/// suppression when the workspace lints itself).
const MARKER: &str = concat!("olive-lint:", " allow(");

/// Parses suppressions out of comment tokens; malformed ones become
/// violations immediately.
fn parse_suppressions(
    comments: &[&Tok],
    regions: &[(u32, u32)],
) -> (Vec<Suppression>, Vec<Violation>) {
    let mut suppressions = Vec::new();
    let mut violations = Vec::new();
    for comment in comments {
        if in_regions(comment.line, regions) {
            continue;
        }
        let Some(pos) = comment.text.find(MARKER) else {
            continue;
        };
        let rest = &comment.text[pos + MARKER.len()..];
        let mut malformed = |why: &str| {
            violations.push(Violation {
                path: String::new(),
                line: comment.line,
                rule: SUPPRESSION_RULE.to_string(),
                message: format!(
                    "malformed suppression ({why}) — expected allow(<rule>): <reason>"
                ),
            });
        };
        let Some((rule, after)) = rest.split_once(')') else {
            malformed("missing closing ')'");
            continue;
        };
        let rule = rule.trim();
        if !is_rule_name(rule) {
            malformed(&format!("unknown rule '{rule}'"));
            continue;
        }
        let Some(reason) = after.trim_start().strip_prefix(':') else {
            malformed("missing ': <reason>' — every suppression must say why");
            continue;
        };
        if reason.trim().is_empty() {
            malformed("empty reason — every suppression must say why");
            continue;
        }
        suppressions.push(Suppression {
            rule: rule.to_string(),
            line: comment.line,
            used: false,
        });
    }
    (suppressions, violations)
}

/// Lints one file's bytes. `rel_path` must be root-relative with forward
/// slashes; it scopes `only`/`allow` matching and is stamped on violations.
pub fn lint_bytes(rel_path: &str, source: &[u8], config: &Config) -> FileOutcome {
    let mut outcome = FileOutcome::default();
    if is_test_path(rel_path) {
        return outcome;
    }
    let tokens = lex(source);
    let code: Vec<Tok> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .cloned()
        .collect();
    let comments: Vec<&Tok> = tokens
        .iter()
        .filter(|t| t.kind == TokKind::Comment)
        .collect();
    let regions = test_regions(&code);
    let (mut suppressions, mut violations) = parse_suppressions(&comments, &regions);

    for rule in RULES {
        let scope = config.rule(rule.name);
        if !scope.only.is_empty() && !scope.only.iter().any(|e| path_matches(rel_path, e)) {
            continue;
        }
        for candidate in (rule.check)(&code) {
            if in_regions(candidate.line, &regions) {
                continue;
            }
            if let Some(s) = suppressions.iter_mut().find(|s| {
                s.rule == rule.name && (s.line == candidate.line || s.line + 1 == candidate.line)
            }) {
                s.used = true;
                continue;
            }
            if let Some(entry) = scope.allow.iter().find(|e| path_matches(rel_path, e)) {
                outcome
                    .allow_hits
                    .push((rule.name.to_string(), entry.clone()));
                continue;
            }
            violations.push(Violation {
                path: String::new(),
                line: candidate.line,
                rule: rule.name.to_string(),
                message: candidate.message,
            });
        }
    }

    for s in &suppressions {
        if !s.used {
            violations.push(Violation {
                path: String::new(),
                line: s.line,
                rule: SUPPRESSION_RULE.to_string(),
                message: format!(
                    "unused suppression for '{}' — nothing on this or the next line \
                     triggers the rule; remove it",
                    s.rule
                ),
            });
        }
    }

    for v in &mut violations {
        v.path = rel_path.to_string();
    }
    violations.sort();
    outcome.violations = violations;
    outcome
}

/// Recursively collects workspace `.rs` files, sorted for deterministic
/// reports. Directories named `target`, dot-directories, and `lint.toml`
/// `skip` entries are pruned.
fn collect_rs_files(root: &Path, config: &Config) -> Result<Vec<(PathBuf, String)>, String> {
    let mut files = Vec::new();
    let mut stack = vec![(root.to_path_buf(), String::new())];
    while let Some((dir, rel)) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let rel_child = if rel.is_empty() {
                name.clone()
            } else {
                format!("{rel}/{name}")
            };
            let path = entry.path();
            if path.is_dir() {
                let skipped = name.starts_with('.')
                    || name == "target"
                    || config.skip.iter().any(|s| path_matches(&rel_child, s));
                if !skipped {
                    stack.push((path, rel_child));
                }
            } else if name.ends_with(".rs") {
                files.push((path, rel_child));
            }
        }
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

/// Lints every `.rs` file under `root` and checks the config's `allow`
/// entries for liveness.
///
/// # Errors
///
/// Returns a message when the tree cannot be walked or a file cannot be
/// read; lint findings are *not* errors — they come back in the report.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<WorkspaceReport, String> {
    let files = collect_rs_files(root, config)?;
    let mut violations = Vec::new();
    let mut live_allows: BTreeSet<(String, String)> = BTreeSet::new();
    let files_scanned = files.len();
    for (path, rel) in files {
        let source =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let outcome = lint_bytes(&rel, &source, config);
        violations.extend(outcome.violations);
        live_allows.extend(outcome.allow_hits);
    }
    for (rule, scope) in &config.rules {
        for entry in &scope.allow {
            if !live_allows.contains(&(rule.clone(), entry.clone())) {
                violations.push(Violation {
                    path: "lint.toml".to_string(),
                    line: 0,
                    rule: SUPPRESSION_RULE.to_string(),
                    message: format!(
                        "allow entry \"{entry}\" for rule '{rule}' exempts nothing — remove it"
                    ),
                });
            }
        }
    }
    violations.sort();
    Ok(WorkspaceReport {
        violations,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions_of(source: &str) -> Vec<(u32, u32)> {
        let code: Vec<Tok> = lex(source.as_bytes())
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        test_regions(&code)
    }

    #[test]
    fn cfg_test_mod_is_one_region() {
        let regions = regions_of(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n",
        );
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        assert!(regions_of("#[cfg(not(test))]\nfn prod() {}\n").is_empty());
    }

    #[test]
    fn stacked_attributes_extend_to_the_item() {
        let regions = regions_of("#[test]\n#[ignore]\nfn t() {\n    body();\n}\n");
        assert_eq!(regions, vec![(1, 5)]);
    }
}
