//! The checked-in `lint.toml` configuration.
//!
//! A deliberately small TOML subset — tables and string arrays — parsed by
//! hand (the workspace has no crates.io dependencies). Two table kinds:
//!
//! ```toml
//! [lint]
//! skip = ["target"]              # directories never scanned
//!
//! [rule.no-unordered-map-in-output]
//! only = ["crates/api/src"]      # rule applies only under these paths
//!
//! [rule.no-spawn-outside-runtime]
//! allow = ["crates/serve/src/server.rs"]  # exempted paths (must be *used*)
//! ```
//!
//! `only` scopes a rule to path prefixes; `allow` exempts path prefixes from
//! an otherwise-applicable rule. Allows follow the same only-shrinking
//! policy as inline suppressions: an `allow` entry that exempts nothing is
//! itself reported as a violation, so stale escape hatches cannot
//! accumulate.

use crate::rules;
use std::collections::BTreeMap;

/// Per-rule path scoping.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// When non-empty, the rule fires only for files under these prefixes.
    pub only: Vec<String>,
    /// Files under these prefixes are exempt; every entry must exempt at
    /// least one match or it is reported as unused.
    pub allow: Vec<String>,
}

/// The parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory names/prefixes (relative to the root) never scanned, in
    /// addition to the built-in `target`/`.git`/dot-dir skips.
    pub skip: Vec<String>,
    /// Scoping per rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

/// True when `rel_path` (forward-slash, root-relative) is `entry` itself or
/// lies under it.
pub fn path_matches(rel_path: &str, entry: &str) -> bool {
    let entry = entry.trim_end_matches('/');
    rel_path == entry
        || (rel_path.len() > entry.len()
            && rel_path.starts_with(entry)
            && rel_path.as_bytes()[entry.len()] == b'/')
}

impl Config {
    /// Scoping for `rule` (empty scoping when unconfigured).
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Parses the `lint.toml` subset described in the [module docs](self).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for unknown rule names,
    /// unknown keys, and anything outside the supported subset.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let errctx = |msg: String| format!("lint.toml:{}: {msg}", idx + 1);
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if name != "lint" {
                    let rule = name.strip_prefix("rule.").ok_or_else(|| {
                        errctx(format!(
                            "unknown table '[{name}]' (expected [lint] or [rule.<name>])"
                        ))
                    })?;
                    if !rules::is_rule_name(rule) {
                        return Err(errctx(format!(
                            "unknown rule '{rule}' (run olive-lint --list-rules)"
                        )));
                    }
                }
                section = Some(name.to_string());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| errctx(format!("expected 'key = [..]', got '{line}'")))?;
            let key = key.trim();
            // Arrays may span lines; keep consuming until the closing ']'.
            let mut value = value.trim().to_string();
            while !value.ends_with(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(errctx(format!("unterminated array for key '{key}'")));
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            let items = parse_string_array(&value).map_err(&errctx)?;
            match (section.as_deref(), key) {
                (Some("lint"), "skip") => config.skip = items,
                (Some(rule_section), "only" | "allow") => {
                    let rule = rule_section
                        .strip_prefix("rule.")
                        .ok_or_else(|| errctx(format!("key '{key}' is not valid under [lint]")))?;
                    let entry = config.rules.entry(rule.to_string()).or_default();
                    if key == "only" {
                        entry.only = items;
                    } else {
                        entry.allow = items;
                    }
                }
                (Some(s), _) => {
                    return Err(errctx(format!("unknown key '{key}' in section '[{s}]'")))
                }
                (None, _) => return Err(errctx(format!("key '{key}' before any [section]"))),
            }
        }
        Ok(config)
    }
}

/// Strips a trailing `# comment`, honouring quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_string = !in_string,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` (trailing comma tolerated).
fn parse_string_array(text: &str) -> Result<Vec<String>, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"..\"] array, got '{text}'"))?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let item = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("array items must be double-quoted strings, got '{part}'"))?;
        items.push(item.to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let config = Config::parse(
            r#"
# top comment
[lint]
skip = ["target", "vendored"]   # trailing comment

[rule.no-unordered-map-in-output]
only = [
    "crates/api/src",
    "crates/serve/src",
]

[rule.no-spawn-outside-runtime]
allow = ["crates/serve/src/server.rs"]
"#,
        )
        .expect("config must parse");
        assert_eq!(config.skip, vec!["target", "vendored"]);
        assert_eq!(
            config.rule("no-unordered-map-in-output").only,
            vec!["crates/api/src", "crates/serve/src"]
        );
        assert_eq!(
            config.rule("no-spawn-outside-runtime").allow,
            vec!["crates/serve/src/server.rs"]
        );
        assert!(config.rule("no-bare-lock-unwrap").only.is_empty());
    }

    #[test]
    fn unknown_rules_and_keys_are_errors() {
        assert!(Config::parse("[rule.no-such-rule]\nallow = []\n")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(Config::parse("[lint]\nfrobnicate = []\n")
            .unwrap_err()
            .contains("unknown key"));
        assert!(Config::parse("[weird]\n")
            .unwrap_err()
            .contains("unknown table"));
    }

    #[test]
    fn path_matching_is_prefix_by_component() {
        assert!(path_matches("crates/api/src/json.rs", "crates/api/src"));
        assert!(path_matches("crates/api/src", "crates/api/src"));
        assert!(!path_matches("crates/api/srcx/json.rs", "crates/api/src"));
        assert!(!path_matches("crates/api", "crates/api/src"));
    }
}
