//! `olive-lint --self-test`: the lint proves it can still catch violations.
//!
//! A linter that silently stops matching is worse than no linter — CI would
//! keep reporting green while the contracts rot. The self-test injects a
//! known-bad snippet for every rule and fails loudly unless the rule fires,
//! then proves the whole suppression lifecycle: a suppressed snippet passes,
//! an unused suppression fails, a reason-less suppression fails, and
//! test-only code stays exempt.

use crate::config::Config;
use crate::engine::{lint_bytes, SUPPRESSION_RULE};
use crate::rules::RULES;

/// One self-test check: a name and an optional failure detail.
#[derive(Debug)]
pub struct Check {
    /// What the check proves, e.g. `rule no-spawn-outside-runtime fires`.
    pub name: String,
    /// `None` when the check passed; otherwise why it failed.
    pub failure: Option<String>,
}

impl Check {
    fn pass(name: impl Into<String>) -> Check {
        Check {
            name: name.into(),
            failure: None,
        }
    }

    fn fail(name: impl Into<String>, why: impl Into<String>) -> Check {
        Check {
            name: name.into(),
            failure: Some(why.into()),
        }
    }
}

/// Paths used by the injected snippets; the config below scopes the
/// path-sensitive rules to them.
const DEMO_LIB: &str = "crates/demo/src/lib.rs";
const DEMO_HTTP: &str = "crates/demo/src/http.rs";

fn selftest_config() -> Config {
    Config::parse(
        r#"
[rule.no-unordered-map-in-output]
only = ["crates/demo/src"]

[rule.no-bare-lock-unwrap]
only = ["crates/demo/src"]

[rule.no-panic-in-request-path]
only = ["crates/demo/src/http.rs"]
"#,
    )
    .expect("the built-in self-test config must parse")
}

/// A known-bad snippet per rule, at a path where the rule is in scope.
fn bad_snippets() -> Vec<(&'static str, &'static str, String)> {
    vec![
        (
            "no-spawn-outside-runtime",
            DEMO_LIB,
            "pub fn f() {\n    std::thread::spawn(|| {});\n}\n".to_string(),
        ),
        (
            "no-available-parallelism",
            DEMO_LIB,
            "pub fn f() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n"
                .to_string(),
        ),
        (
            "no-unordered-map-in-output",
            DEMO_LIB,
            "pub type Index = std::collections::HashMap<String, u32>;\n".to_string(),
        ),
        (
            "no-bare-lock-unwrap",
            DEMO_LIB,
            "pub fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock().unwrap()\n}\n".to_string(),
        ),
        (
            "no-wallclock-in-deterministic-paths",
            DEMO_LIB,
            "pub fn f() -> u64 {\n    std::time::Instant::now().elapsed().as_secs()\n}\n".to_string(),
        ),
        (
            "no-panic-in-request-path",
            DEMO_HTTP,
            "pub fn first(v: &[u8]) -> u8 {\n    v[0]\n}\n".to_string(),
        ),
        (
            "no-unsafe-outside-simd",
            DEMO_LIB,
            "pub fn read(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n".to_string(),
        ),
    ]
}

/// The inline suppression for `rule`, assembled here (not written literally
/// into any comment) so the workspace's own lint never sees a stray marker.
fn suppression_comment(rule: &str) -> String {
    format!(
        "// olive-lint:{} allow({rule}): injected by --self-test",
        ""
    )
}

/// Runs every self-test check. The caller decides how to render them;
/// [`passed`](fn@passed) summarizes.
pub fn run() -> Vec<Check> {
    let config = selftest_config();
    let mut checks = Vec::new();

    for (rule, path, bad) in bad_snippets() {
        // 1. The injected violation must fail.
        let outcome = lint_bytes(path, bad.as_bytes(), &config);
        let fired: Vec<_> = outcome
            .violations
            .iter()
            .filter(|v| v.rule == rule)
            .collect();
        let stray: Vec<_> = outcome
            .violations
            .iter()
            .filter(|v| v.rule != rule)
            .collect();
        if fired.is_empty() {
            checks.push(Check::fail(
                format!("rule {rule} fires on an injected violation"),
                format!("no {rule} violation reported for:\n{bad}"),
            ));
            continue;
        } else if !stray.is_empty() {
            checks.push(Check::fail(
                format!("rule {rule} fires on an injected violation"),
                format!("unexpected extra findings: {stray:?}"),
            ));
            continue;
        }
        checks.push(Check::pass(format!(
            "rule {rule} fires on an injected violation"
        )));

        // 2. The same snippet with a suppression above the flagged line must
        //    pass clean — and the suppression must count as used.
        let flagged_line = fired[0].line as usize;
        let mut lines: Vec<&str> = bad.lines().collect();
        let comment = suppression_comment(rule);
        lines.insert(flagged_line - 1, &comment);
        let suppressed = lines.join("\n");
        let outcome = lint_bytes(path, suppressed.as_bytes(), &config);
        if outcome.violations.is_empty() {
            checks.push(Check::pass(format!("suppression silences {rule}")));
        } else {
            checks.push(Check::fail(
                format!("suppression silences {rule}"),
                format!("still reported: {:?}", outcome.violations),
            ));
        }
    }

    // 3. Trailing (same-line) suppressions work too.
    let trailing = format!(
        "pub fn f(m: &std::sync::Mutex<u32>) -> u32 {{\n    *m.lock().unwrap() {}\n}}\n",
        suppression_comment("no-bare-lock-unwrap")
    );
    let outcome = lint_bytes(DEMO_LIB, trailing.as_bytes(), &config);
    checks.push(if outcome.violations.is_empty() {
        Check::pass("trailing same-line suppression works")
    } else {
        Check::fail(
            "trailing same-line suppression works",
            format!("still reported: {:?}", outcome.violations),
        )
    });

    // 4. A suppression with nothing to suppress is itself an error.
    let unused = format!(
        "{}\npub fn clean() {{}}\n",
        suppression_comment("no-bare-lock-unwrap")
    );
    let outcome = lint_bytes(DEMO_LIB, unused.as_bytes(), &config);
    let flagged_unused = outcome
        .violations
        .iter()
        .any(|v| v.rule == SUPPRESSION_RULE && v.message.contains("unused"));
    checks.push(if flagged_unused {
        Check::pass("unused suppression is reported")
    } else {
        Check::fail(
            "unused suppression is reported",
            format!("got: {:?}", outcome.violations),
        )
    });

    // 5. A suppression without a reason is malformed — and must NOT silence
    //    the violation it sits on.
    let reasonless = format!(
        "// olive-lint:{} allow(no-bare-lock-unwrap)\npub fn f(m: &std::sync::Mutex<u32>) -> u32 {{\n    *m.lock().unwrap()\n}}\n",
        ""
    );
    let outcome = lint_bytes(DEMO_LIB, reasonless.as_bytes(), &config);
    let malformed = outcome
        .violations
        .iter()
        .any(|v| v.rule == SUPPRESSION_RULE && v.message.contains("malformed"));
    let still_fires = outcome
        .violations
        .iter()
        .any(|v| v.rule == "no-bare-lock-unwrap");
    checks.push(if malformed && still_fires {
        Check::pass("reason-less suppression is malformed and does not suppress")
    } else {
        Check::fail(
            "reason-less suppression is malformed and does not suppress",
            format!("got: {:?}", outcome.violations),
        )
    });

    // 6. A suppression naming an unknown rule is malformed.
    let unknown = suppression_comment("no-such-rule");
    let outcome = lint_bytes(DEMO_LIB, unknown.as_bytes(), &config);
    let flagged_unknown = outcome
        .violations
        .iter()
        .any(|v| v.rule == SUPPRESSION_RULE && v.message.contains("unknown rule"));
    checks.push(if flagged_unknown {
        Check::pass("unknown rule in a suppression is reported")
    } else {
        Check::fail(
            "unknown rule in a suppression is reported",
            format!("got: {:?}", outcome.violations),
        )
    });

    // 7. #[cfg(test)] code is exempt from every rule.
    let test_mod = "#[cfg(test)]\nmod tests {\n    pub fn f() {\n        std::thread::spawn(|| {});\n    }\n}\n";
    let outcome = lint_bytes(DEMO_LIB, test_mod.as_bytes(), &config);
    checks.push(if outcome.violations.is_empty() {
        Check::pass("#[cfg(test)] items are exempt")
    } else {
        Check::fail(
            "#[cfg(test)] items are exempt",
            format!("got: {:?}", outcome.violations),
        )
    });

    // 8. Files under tests/ are skipped wholesale.
    let outcome = lint_bytes(
        "crates/demo/tests/smoke.rs",
        "fn f() { std::thread::spawn(|| {}); }".as_bytes(),
        &config,
    );
    checks.push(if outcome.violations.is_empty() {
        Check::pass("tests/ files are skipped")
    } else {
        Check::fail(
            "tests/ files are skipped",
            format!("got: {:?}", outcome.violations),
        )
    });

    // 9. A lint.toml allow entry exempts the file and records liveness.
    let allow_config =
        Config::parse("[rule.no-spawn-outside-runtime]\nallow = [\"crates/demo/src/lib.rs\"]\n")
            .expect("allow config must parse");
    let outcome = lint_bytes(
        DEMO_LIB,
        "pub fn f() { std::thread::spawn(|| {}); }".as_bytes(),
        &allow_config,
    );
    let exempted = outcome.violations.is_empty()
        && outcome.allow_hits
            == vec![(
                "no-spawn-outside-runtime".to_string(),
                "crates/demo/src/lib.rs".to_string(),
            )];
    checks.push(if exempted {
        Check::pass("lint.toml allow entries exempt and register liveness")
    } else {
        Check::fail(
            "lint.toml allow entries exempt and register liveness",
            format!(
                "violations: {:?}, allow_hits: {:?}",
                outcome.violations, outcome.allow_hits
            ),
        )
    });

    checks.push(rules_cover_catalog());
    checks
}

/// Guards the self-test itself: every cataloged rule must have an injected
/// bad snippet above, so adding a rule without extending the self-test fails.
fn rules_cover_catalog() -> Check {
    let covered: Vec<&str> = bad_snippets().iter().map(|(r, _, _)| *r).collect();
    let missing: Vec<&str> = RULES
        .iter()
        .map(|r| r.name)
        .filter(|name| !covered.contains(name))
        .collect();
    if missing.is_empty() {
        Check::pass("every rule has a self-test snippet")
    } else {
        Check::fail(
            "every rule has a self-test snippet",
            format!("rules without snippets: {missing:?}"),
        )
    }
}

/// True when every check passed.
pub fn passed(checks: &[Check]) -> bool {
    checks.iter().all(|c| c.failure.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_self_test_passes() {
        let checks = run();
        let failures: Vec<_> = checks.iter().filter(|c| c.failure.is_some()).collect();
        assert!(failures.is_empty(), "self-test failures: {failures:?}");
        assert!(checks.len() >= RULES.len() * 2, "per-rule checks missing");
    }
}
