//! A small hand-rolled Rust lexer — just enough syntax awareness for
//! reliable pattern matching over source code.
//!
//! The rules in [`crate::rules`] match *token* sequences, never raw text, so
//! the lexer's one job is to classify bytes correctly in the places where a
//! text search would lie:
//!
//! * **strings** — `"…"`, raw strings `r"…"`/`r#"…"#` (any number of
//!   hashes), byte strings `b"…"`/`br#"…"#`, C strings `c"…"`/`cr#"…"#` —
//!   so `"HashMap"` inside a string literal is data, not a violation;
//! * **comments** — line comments and *nested* block comments
//!   (`/* /* */ */`), preserved as tokens so the suppression scanner can
//!   read them, but invisible to the rules;
//! * **`'a` vs `'a'`** — lifetimes and char literals share a sigil; the
//!   lexer disambiguates so a `'l'` char cannot terminate scanning early;
//! * **raw identifiers** — `r#match` is an identifier, not the start of a
//!   raw string.
//!
//! The input is arbitrary bytes, not `&str`: source files are read without a
//! UTF-8 check, and the lexer **never panics** (the property tests in
//! `tests/lex_fuzz.rs` hammer this with mutated byte soup). Unexpected bytes
//! become [`TokKind::Unknown`] tokens; unterminated literals and comments
//! run to end of input.

/// What a token is. See the [module docs](self) for the classification
/// guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`thread`, `fn`, `HashMap`); keywords are
    /// distinguished by [`is_keyword`].
    Ident,
    /// A raw identifier (`r#match`); `text` keeps the `r#` prefix.
    RawIdent,
    /// A lifetime (`'a`, `'static`), without trailing quote.
    Lifetime,
    /// A char (`'x'`, `'\n'`) or byte (`b'x'`) literal.
    Char,
    /// A string literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A numeric literal (`42`, `0xff`, `1.5e-3`, `2_000u64`).
    Num,
    /// A `// …` or `/* … */` comment (doc comments included); `text` keeps
    /// the delimiters. Rules skip these; the suppression scanner reads them.
    Comment,
    /// Punctuation. Multi-byte only for `::`; every other punct is one byte.
    Punct,
    /// A byte the lexer has no rule for (stray `\x00`, non-ASCII outside a
    /// literal, a lone `'`…). Never fatal.
    Unknown,
}

/// One token: classification, the exact source bytes (lossily UTF-8-decoded
/// for convenience), and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The classification.
    pub kind: TokKind,
    /// The token's source text (lossy where the input was not UTF-8).
    pub text: String,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Tok {
    /// True for an [`TokKind::Ident`] with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a [`TokKind::Punct`] with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// Rust's strict and reserved keywords — matched so rules can tell `mut [`
/// (a slice pattern) from `data[` (an index expression).
pub fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "as" | "async"
            | "await"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Consumes one byte, keeping the line counter honest.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn text_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    /// Consumes ident-continue bytes.
    fn eat_ident(&mut self) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed), honouring
    /// backslash escapes; stops at EOF if unterminated.
    fn eat_quoted(&mut self, quote: u8) {
        while let Some(b) = self.bump() {
            if b == b'\\' {
                self.bump();
            } else if b == quote {
                return;
            }
        }
    }

    /// Consumes a raw-string body `#*"…"#*` starting at the first `#` or `"`
    /// (the `r`/`br`/`cr` prefix is already consumed).
    fn eat_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; caller pre-checked, defensive
        }
        self.bump();
        'scan: while let Some(b) = self.bump() {
            if b != b'"' {
                continue;
            }
            for i in 0..hashes {
                if self.peek(i) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                self.bump();
            }
            return;
        }
    }

    /// Consumes a `/* … */` body with nesting (the opening `/*` is already
    /// consumed); stops at EOF if unterminated.
    fn eat_block_comment(&mut self) {
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => return,
                Some(b'/') if self.peek(0) == Some(b'*') => {
                    self.bump();
                    depth += 1;
                }
                Some(b'*') if self.peek(0) == Some(b'/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
            }
        }
    }

    /// Consumes a numeric literal (first digit already consumed). Handles
    /// `0xff`, `1_000u64`, `1.5`, `1e-3`; deliberately permissive — rules
    /// never inspect numbers, they only need them kept out of other kinds.
    fn eat_number(&mut self) {
        loop {
            match self.peek(0) {
                Some(b) if is_ident_continue(b) => {
                    self.bump();
                }
                // `1.5` but not `1..3` (range) and not `1.method()`.
                Some(b'.') if self.peek(1).is_some_and(|b| b.is_ascii_digit()) => {
                    self.bump();
                }
                // Exponent sign: `1e-3`, `2E+5`.
                Some(b'+' | b'-')
                    if self
                        .bytes
                        .get(self.pos.wrapping_sub(1))
                        .is_some_and(|&b| b == b'e' || b == b'E')
                        && self.peek(1).is_some_and(|b| b.is_ascii_digit()) =>
                {
                    self.bump();
                }
                _ => return,
            }
        }
    }

    /// Lexes a `'`-led token: lifetime or char literal.
    fn quote_token(&mut self, start: usize, line: u32) -> Tok {
        self.bump(); // the opening '
        match self.peek(0) {
            // Escape: definitely a char literal ('\n', '\u{1F600}', '\'').
            Some(b'\\') => {
                self.eat_quoted(b'\'');
                Tok {
                    kind: TokKind::Char,
                    text: self.text_from(start),
                    line,
                }
            }
            Some(b) if is_ident_start(b) => {
                self.eat_ident();
                // 'a' / '_' close immediately after the run -> char literal;
                // 'a / 'static followed by anything else -> lifetime.
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                    Tok {
                        kind: TokKind::Char,
                        text: self.text_from(start),
                        line,
                    }
                } else {
                    Tok {
                        kind: TokKind::Lifetime,
                        text: self.text_from(start),
                        line,
                    }
                }
            }
            // Some other single char: '9', '+', a non-ASCII scalar…
            // Treat as a char literal if a closing quote follows.
            Some(_) => {
                self.bump();
                while self.peek(0).is_some_and(|b| b >= 0x80) {
                    self.bump(); // rest of one multi-byte scalar
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                    Tok {
                        kind: TokKind::Char,
                        text: self.text_from(start),
                        line,
                    }
                } else {
                    Tok {
                        kind: TokKind::Unknown,
                        text: self.text_from(start),
                        line,
                    }
                }
            }
            None => Tok {
                kind: TokKind::Unknown,
                text: self.text_from(start),
                line,
            },
        }
    }

    fn next_token(&mut self) -> Option<Tok> {
        while self.peek(0).is_some_and(|b| b.is_ascii_whitespace()) {
            self.bump();
        }
        let start = self.pos;
        let line = self.line;
        let b = self.peek(0)?;
        let tok = |kind, lexer: &Self| Tok {
            kind,
            text: lexer.text_from(start),
            line,
        };
        match b {
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|b| b != b'\n') {
                    self.bump();
                }
                Some(tok(TokKind::Comment, self))
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump();
                self.bump();
                self.eat_block_comment();
                Some(tok(TokKind::Comment, self))
            }
            b'"' => {
                self.bump();
                self.eat_quoted(b'"');
                Some(tok(TokKind::Str, self))
            }
            b'\'' => Some(self.quote_token(start, line)),
            // r"…" / r#"…"# raw strings vs r#ident raw identifiers.
            b'r' if matches!(self.peek(1), Some(b'"' | b'#')) => {
                if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) {
                    self.bump();
                    self.bump();
                    self.eat_ident();
                    return Some(tok(TokKind::RawIdent, self));
                }
                self.bump();
                self.eat_raw_string();
                Some(tok(TokKind::Str, self))
            }
            // b'x' byte chars, b"…" byte strings, br#"…"# raw byte strings
            // (and the c/cr C-string forms).
            b'b' | b'c' if matches!(self.peek(1), Some(b'"' | b'\'' | b'r')) => {
                match self.peek(1) {
                    Some(b'"') => {
                        self.bump();
                        self.bump();
                        self.eat_quoted(b'"');
                        Some(tok(TokKind::Str, self))
                    }
                    Some(b'\'') if b == b'b' => {
                        self.bump();
                        self.bump();
                        self.eat_quoted(b'\'');
                        Some(tok(TokKind::Char, self))
                    }
                    Some(b'r') if matches!(self.peek(2), Some(b'"' | b'#')) => {
                        self.bump();
                        self.bump();
                        self.eat_raw_string();
                        Some(tok(TokKind::Str, self))
                    }
                    _ => {
                        self.eat_ident();
                        Some(tok(TokKind::Ident, self))
                    }
                }
            }
            _ if is_ident_start(b) => {
                self.eat_ident();
                Some(tok(TokKind::Ident, self))
            }
            _ if b.is_ascii_digit() => {
                self.bump();
                self.eat_number();
                Some(tok(TokKind::Num, self))
            }
            b':' if self.peek(1) == Some(b':') => {
                self.bump();
                self.bump();
                Some(tok(TokKind::Punct, self))
            }
            _ if b.is_ascii_punctuation() => {
                self.bump();
                Some(tok(TokKind::Punct, self))
            }
            _ => {
                self.bump();
                Some(tok(TokKind::Unknown, self))
            }
        }
    }
}

/// Lexes `source` into a token stream. Total: consumes every byte, never
/// panics, and token line numbers are nondecreasing.
pub fn lex(source: &[u8]) -> Vec<Tok> {
    let mut lexer = Lexer {
        bytes: source,
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(tok) = lexer.next_token() {
        tokens.push(tok);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokKind, String)> {
        lex(source.as_bytes())
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents_from_rules() {
        let toks = kinds(r#"let x = "HashMap::new() /* not a comment */";"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            1,
            "{toks:?}"
        );
        assert!(
            !toks
                .iter()
                .any(|(k, t)| *k == TokKind::Ident && t == "HashMap"),
            "string contents must not produce idents: {toks:?}"
        );
    }

    #[test]
    fn division_is_not_a_comment() {
        let toks = kinds("let x = a / b; // real comment");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "/"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Comment).count(),
            1
        );
    }

    #[test]
    fn pathsep_is_one_token() {
        let toks = kinds("std::thread::spawn");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "std".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "thread".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "spawn".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let toks = lex(b"\"a\nb\nc\"\nfoo");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "foo");
        assert_eq!(toks[1].line, 4);
    }
}
