//! The rule catalog.
//!
//! Each rule is a pure function over the file's *code* tokens (comments
//! already stripped) returning candidate violations; the engine in
//! [`crate::engine`] then applies test-region filtering, inline
//! suppressions, and `lint.toml` scoping. Matching on token sequences
//! instead of text means a `"thread::spawn"` string literal or a
//! `// HashMap` comment can never fire a rule.
//!
//! The catalog (see `crates/lint/RULES.md` for the full prose rationale):
//!
//! | rule | contract it guards |
//! |------|--------------------|
//! | `no-spawn-outside-runtime`            | all parallelism goes through `olive_runtime::Pool` |
//! | `no-available-parallelism`            | thread counts are explicit, never ambient |
//! | `no-unordered-map-in-output`          | output layers iterate ordered containers only |
//! | `no-bare-lock-unwrap`                 | poisoned locks recover, never cascade |
//! | `no-wallclock-in-deterministic-paths` | deterministic paths never read the clock |
//! | `no-panic-in-request-path`            | request parsing returns errors, never panics |
//! | `no-unsafe-outside-simd`              | `unsafe` lives only in the SIMD dispatch module |

use crate::lexer::{is_keyword, Tok, TokKind};

/// A candidate violation, before suppression/scoping.
#[derive(Debug, Clone)]
pub struct RuleViolation {
    /// 1-based line the violation anchors to (where a suppression must sit).
    pub line: u32,
    /// Human-readable explanation with the expected replacement.
    pub message: String,
}

/// A named, individually-suppressible rule.
pub struct Rule {
    /// The name used in `lint.toml` sections and `allow(...)` suppressions.
    pub name: &'static str,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// The token-level matcher.
    pub check: fn(&[Tok]) -> Vec<RuleViolation>,
}

/// Every rule, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-spawn-outside-runtime",
        summary: "raw thread::spawn/Builder bypasses the deterministic Pool",
        check: check_no_spawn,
    },
    Rule {
        name: "no-available-parallelism",
        summary: "ambient CPU counts make results machine-dependent",
        check: check_no_available_parallelism,
    },
    Rule {
        name: "no-unordered-map-in-output",
        summary: "HashMap/HashSet iteration order is unstable across runs",
        check: check_no_unordered_map,
    },
    Rule {
        name: "no-bare-lock-unwrap",
        summary: "lock().unwrap() cascades one panic into a hung server",
        check: check_no_bare_lock_unwrap,
    },
    Rule {
        name: "no-wallclock-in-deterministic-paths",
        summary: "Instant/SystemTime reads leak wall time into output",
        check: check_no_wallclock,
    },
    Rule {
        name: "no-panic-in-request-path",
        summary: "request parsing must reject bad input, not panic on it",
        check: check_no_panic_in_request_path,
    },
    Rule {
        name: "no-unsafe-outside-simd",
        summary: "unsafe code belongs in crates/core/src/simd.rs only",
        check: check_no_unsafe,
    },
];

/// True when `name` names a rule in [`RULES`].
pub fn is_rule_name(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

fn violation(line: u32, message: impl Into<String>) -> RuleViolation {
    RuleViolation {
        line,
        message: message.into(),
    }
}

/// `thread::spawn` / `thread::Builder`: only the runtime's pool (and the
/// explicitly allowed accept/drain threads) may create threads — ad-hoc
/// threads make scheduling, and therefore reduction order, nondeterministic.
fn check_no_spawn(code: &[Tok]) -> Vec<RuleViolation> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("thread") || !code.get(i + 1).is_some_and(|t| t.is_punct("::")) {
            continue;
        }
        if let Some(target) = code.get(i + 2) {
            if target.is_ident("spawn") || target.is_ident("Builder") {
                out.push(violation(
                    target.line,
                    format!(
                        "thread::{} outside olive_runtime — route work through Pool::scope \
                         so scheduling stays deterministic",
                        target.text
                    ),
                ));
            }
        }
    }
    out
}

/// `available_parallelism()`: thread counts must be explicit configuration
/// (resolved once, in one place) so the same command line means the same
/// execution everywhere.
fn check_no_available_parallelism(code: &[Tok]) -> Vec<RuleViolation> {
    code.iter()
        .filter(|t| t.is_ident("available_parallelism"))
        .map(|t| {
            violation(
                t.line,
                "available_parallelism() makes behaviour machine-dependent — take the \
                 thread count from configuration (see olive_runtime::Pool::with_threads)",
            )
        })
        .collect()
}

/// `HashMap`/`HashSet` in output-producing layers: their iteration order
/// changes across processes (SipHash keying), which breaks byte-identical
/// reports. Scoped via `only` in lint.toml to the layers that serialize.
fn check_no_unordered_map(code: &[Tok]) -> Vec<RuleViolation> {
    code.iter()
        .filter(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
        .map(|t| {
            violation(
                t.line,
                format!(
                    "{} iteration order is randomized per-process — use the BTree \
                     equivalent (or an insertion-ordered Vec) in output-producing code",
                    t.text
                ),
            )
        })
        .collect()
}

/// `.lock().unwrap()` / `.wait(..).expect(..)` and friends: a panic while a
/// lock is held poisons it, and unwrapping the poison turns one dead worker
/// into a cascade. Scoped via `only` to the concurrent layers, which must use
/// `olive_runtime::lock_or_recover` / `wait_or_recover` instead.
fn check_no_bare_lock_unwrap(code: &[Tok]) -> Vec<RuleViolation> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let acquire = &code[i];
        let is_acquire = acquire.kind == TokKind::Ident
            && matches!(acquire.text.as_str(), "lock" | "wait" | "wait_timeout")
            && i > 0
            && code[i - 1].is_punct(".")
            && code.get(i + 1).is_some_and(|t| t.is_punct("("));
        if !is_acquire {
            i += 1;
            continue;
        }
        // Skip the balanced argument list of the acquire call.
        let mut depth = 0usize;
        let mut j = i + 1;
        while let Some(t) = code.get(j) {
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if let (Some(dot), Some(consume)) = (code.get(j + 1), code.get(j + 2)) {
            if dot.is_punct(".") && (consume.is_ident("unwrap") || consume.is_ident("expect")) {
                let helper = match acquire.text.as_str() {
                    "lock" => "lock_or_recover",
                    "wait" => "wait_or_recover",
                    _ => "wait_timeout_or_recover",
                };
                out.push(violation(
                    consume.line,
                    format!(
                        ".{}(..).{}() panics on a poisoned lock and cascades the failure — \
                         use olive_runtime::{helper} instead",
                        acquire.text, consume.text
                    ),
                ));
            }
        }
        i = j + 1;
    }
    out
}

/// `Instant::now` / `SystemTime`: wall-clock reads in paths that feed output
/// make reports differ run-to-run. Timing-report sites carry an inline
/// suppression documenting where the reading is stripped for comparisons.
fn check_no_wallclock(code: &[Tok]) -> Vec<RuleViolation> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("Instant")
            && code.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && code.get(i + 2).is_some_and(|t| t.is_ident("now"))
        {
            out.push(violation(
                t.line,
                "Instant::now() in a deterministic path — wall time must not influence \
                 output bytes; measure in the bench layer or suppress with the reason",
            ));
        } else if t.is_ident("SystemTime") {
            out.push(violation(
                t.line,
                "SystemTime in a deterministic path — derive timestamps from inputs \
                 (seed, request id), never from the host clock",
            ));
        }
    }
    out
}

/// `.unwrap()` / `.expect()` / `panic!`-family / bare indexing in the
/// request-parsing path: malformed network input must surface as an error
/// response, never a worker panic. Scoped via `only` to the HTTP parser.
fn check_no_panic_in_request_path(code: &[Tok]) -> Vec<RuleViolation> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && i > 0
            && code[i - 1].is_punct(".")
            && code.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            out.push(violation(
                t.line,
                format!(
                    ".{}() in the request path panics on malformed input — return an \
                     error response instead",
                    t.text
                ),
            ));
        } else if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && code.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            out.push(violation(
                t.line,
                format!(
                    "{}! in the request path — a malformed request must produce a 4xx, \
                     not kill the worker",
                    t.text
                ),
            ));
        } else if t.is_punct("[") && i > 0 {
            // Index *expressions* only: `expr[`, `ident[`, `slice[..][`. A `[`
            // after a keyword (`mut [a, b]`), punctuation, or `#` is a pattern,
            // type, or attribute — those cannot panic at runtime.
            let prev = &code[i - 1];
            let is_index_base = (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
                || prev.is_punct(")")
                || prev.is_punct("]");
            if is_index_base {
                out.push(violation(
                    t.line,
                    "indexing in the request path panics when out of bounds — use \
                     .get()/.get_mut() and handle the None",
                ));
            }
        }
    }
    out
}

/// The `unsafe` keyword anywhere — blocks, fns, impls, trait declarations:
/// the workspace confines unchecked code to the SIMD dispatch module (whose
/// intrinsics require it) so every other layer stays borrow-checked. The
/// sanctioned files (`crates/core/src/simd.rs`, plus the pool's
/// grandfathered lifetime-erasure internals) are exempted via `allow` in
/// `lint.toml`; keywords only lex as identifier tokens, so `"unsafe"` in a
/// string or comment can never fire.
fn check_no_unsafe(code: &[Tok]) -> Vec<RuleViolation> {
    code.iter()
        .filter(|t| t.is_ident("unsafe"))
        .map(|t| {
            violation(
                t.line,
                "unsafe outside crates/core/src/simd.rs — rewrite with safe primitives \
                 (split_at_mut, OnceLock, the runtime pool) or move the kernel into the \
                 SIMD module",
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code_tokens(source: &str) -> Vec<Tok> {
        lex(source.as_bytes())
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect()
    }

    fn run(rule: &str, source: &str) -> Vec<RuleViolation> {
        let rule = RULES.iter().find(|r| r.name == rule).expect("known rule");
        (rule.check)(&code_tokens(source))
    }

    #[test]
    fn spawn_matches_calls_not_strings() {
        assert_eq!(
            run("no-spawn-outside-runtime", "std::thread::spawn(|| {});").len(),
            1
        );
        assert_eq!(
            run("no-spawn-outside-runtime", "thread::Builder::new()").len(),
            1
        );
        assert!(run("no-spawn-outside-runtime", r#"let s = "thread::spawn";"#).is_empty());
        assert!(run("no-spawn-outside-runtime", "pool.spawn(task)").is_empty());
    }

    #[test]
    fn lock_unwrap_matches_the_chain() {
        assert_eq!(run("no-bare-lock-unwrap", "m.lock().unwrap()").len(), 1);
        assert_eq!(
            run("no-bare-lock-unwrap", "m.lock().expect(\"poisoned\")").len(),
            1
        );
        assert_eq!(
            run("no-bare-lock-unwrap", "cv.wait(guard).unwrap()").len(),
            1
        );
        assert_eq!(
            run("no-bare-lock-unwrap", "cv.wait_timeout(g, d).unwrap()").len(),
            1
        );
        assert!(run("no-bare-lock-unwrap", "lock_or_recover(&m)").is_empty());
        assert!(run("no-bare-lock-unwrap", "m.lock().map(|g| *g)").is_empty());
        assert!(run("no-bare-lock-unwrap", "match m.lock() { _ => {} }").is_empty());
    }

    #[test]
    fn wallclock_matches_instant_now_and_systemtime() {
        assert_eq!(
            run("no-wallclock-in-deterministic-paths", "Instant::now()").len(),
            1
        );
        assert_eq!(
            run(
                "no-wallclock-in-deterministic-paths",
                "SystemTime::UNIX_EPOCH"
            )
            .len(),
            1
        );
        assert!(run("no-wallclock-in-deterministic-paths", "let t: Instant = x;").is_empty());
    }

    #[test]
    fn indexing_rule_distinguishes_expressions_from_patterns() {
        assert_eq!(run("no-panic-in-request-path", "let b = buf[0];").len(), 1);
        assert_eq!(run("no-panic-in-request-path", "head(&line)[1]").len(), 1);
        assert!(run("no-panic-in-request-path", "let [a, b] = pair;").is_empty());
        assert!(run("no-panic-in-request-path", "fn f(x: [u8; 4]) {}").is_empty());
        assert!(run("no-panic-in-request-path", "#[derive(Debug)]").is_empty());
        assert!(run("no-panic-in-request-path", "let v: Vec<[u8; 2]> = vec![];").is_empty());
    }

    #[test]
    fn panic_family_needs_the_bang() {
        assert_eq!(
            run("no-panic-in-request-path", r#"panic!("boom")"#).len(),
            1
        );
        assert_eq!(run("no-panic-in-request-path", "unreachable!()").len(), 1);
        assert!(run("no-panic-in-request-path", "std::panic::catch_unwind(f)").is_empty());
    }

    #[test]
    fn unsafe_matches_code_not_strings_or_comments() {
        assert_eq!(run("no-unsafe-outside-simd", "unsafe { *ptr }").len(), 1);
        assert_eq!(
            run(
                "no-unsafe-outside-simd",
                "pub unsafe fn load(p: *const u8) {}"
            )
            .len(),
            1
        );
        assert_eq!(
            run("no-unsafe-outside-simd", "unsafe impl Send for Job {}").len(),
            1
        );
        assert!(run("no-unsafe-outside-simd", r#"let s = "unsafe";"#).is_empty());
        assert!(run("no-unsafe-outside-simd", "// unsafe here would be bad").is_empty());
        assert!(run("no-unsafe-outside-simd", "let unsafety = 1;").is_empty());
    }

    #[test]
    fn unordered_map_matches_both_types() {
        assert_eq!(run("no-unordered-map-in-output", "HashMap::new()").len(), 1);
        assert_eq!(
            run("no-unordered-map-in-output", "HashSet::from([1])").len(),
            1
        );
        assert!(run("no-unordered-map-in-output", "BTreeMap::new()").is_empty());
    }
}
