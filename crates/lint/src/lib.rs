//! `olive-lint`: workspace static analysis for the determinism and
//! concurrency contracts.
//!
//! The OliVe reproduction promises byte-identical evaluation and generation
//! output at any thread count, batch size, or stream interleaving — and a
//! serving layer where one panicked worker never takes the process hostage.
//! Those contracts live in *conventions* (all parallelism through
//! [`Pool`](../olive_runtime), ordered containers in output layers,
//! poison-recovering locks, no wall-clock reads in deterministic paths) that
//! the type system cannot see. This crate makes the conventions mechanical:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (raw strings, nested block
//!   comments, lifetime-vs-char) so rules match token sequences, never text;
//! * [`rules`] — the named rule catalog (see `RULES.md`);
//! * [`config`] — the checked-in `lint.toml` with per-rule `only`/`allow`
//!   path scoping;
//! * [`engine`] — file discovery, `#[cfg(test)]` exemption, inline
//!   suppressions with mandatory reasons, and unused-suppression errors;
//! * [`selftest`] — `--self-test` injects a violation per rule and proves
//!   the lint still catches it.
//!
//! Zero dependencies, like the rest of the workspace: the lexer, TOML
//! subset, and directory walk are all std-only.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod selftest;

pub use config::Config;
pub use engine::{lint_bytes, lint_workspace, Violation, WorkspaceReport};
