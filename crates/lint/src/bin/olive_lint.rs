//! The `olive-lint` command-line driver.
//!
//! ```text
//! olive-lint [--root DIR] [--config FILE] [--list-rules] [--self-test]
//! ```
//!
//! Without flags: finds the workspace root (the nearest ancestor of the
//! current directory containing `lint.toml`), lints every `.rs` file, prints
//! violations as `path:line: [rule] message`, and exits 1 if any were found.

use olive_lint::{config::Config, engine, rules, selftest};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("olive-lint: error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut self_test = false;
    let mut list_rules = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    iter.next().ok_or("--root needs a directory")?,
                ))
            }
            "--config" => {
                config_path = Some(PathBuf::from(iter.next().ok_or("--config needs a file")?))
            }
            "--self-test" => self_test = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }

    if list_rules {
        for rule in rules::RULES {
            println!("{:40} {}", rule.name, rule.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    if self_test {
        let checks = selftest::run();
        for check in &checks {
            match &check.failure {
                None => println!("self-test: PASS {}", check.name),
                Some(why) => println!("self-test: FAIL {} — {why}", check.name),
            }
        }
        return Ok(if selftest::passed(&checks) {
            println!("self-test: all {} checks passed", checks.len());
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    let root = match root {
        Some(root) => root,
        None => find_root()?,
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = Config::parse(&config_text)?;
    let report = engine::lint_workspace(&root, &config)?;
    for violation in &report.violations {
        println!("{violation}");
    }
    if report.violations.is_empty() {
        println!(
            "olive-lint: {} files clean ({} rules)",
            report.files_scanned,
            rules::RULES.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "olive-lint: {} violation(s) in {} files scanned",
            report.violations.len(),
            report.files_scanned
        );
        Ok(ExitCode::FAILURE)
    }
}

/// Walks up from the current directory to the nearest `lint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir: &Path = &start;
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no lint.toml found from {} upward (pass --root)",
                    start.display()
                ))
            }
        }
    }
}

const HELP: &str = "\
olive-lint: static analysis for the OliVe determinism & concurrency contracts

USAGE:
    olive-lint [--root DIR] [--config FILE]
    olive-lint --self-test
    olive-lint --list-rules

OPTIONS:
    --root DIR      Workspace root to lint (default: nearest ancestor with lint.toml)
    --config FILE   Config file (default: <root>/lint.toml)
    --self-test     Inject a violation per rule and verify the lint catches it
    --list-rules    Print the rule catalog
    -h, --help      This help

Suppressions are inline comments with a mandatory reason (see
crates/lint/RULES.md); unused suppressions are themselves errors.
";
