//! Spawning and stopping `olive-serve` worker processes.
//!
//! The router daemon's `--spawn N` mode launches N workers on ephemeral
//! ports, scrapes each one's `olive-serve listening on http://…` startup
//! line, and stops them again (via their `/shutdown` endpoint, with a kill
//! as the fallback) when the router exits.

use olive_serve::client::{Connection, Timeouts};
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

/// How long to wait for a worker to print its startup line, in 50 ms polls
/// of line reads (the read itself blocks, so this bounds pathological
/// workers that print garbage forever, not silence — silence holds the pipe
/// open and is bounded by the child dying or the operator's patience).
const MAX_STARTUP_LINES: usize = 100;

/// How long to wait for a worker to exit after `/shutdown`, in 100 ms polls.
const MAX_EXIT_POLLS: usize = 50;

/// A worker process this router spawned and owns.
pub struct SpawnedWorker {
    child: Child,
    addr: SocketAddr,
    url: String,
    // Kept open so the worker's println! never hits a closed pipe; the
    // worker only writes two lines over its lifetime, so the pipe buffer
    // cannot fill.
    _stdout: Option<BufReader<ChildStdout>>,
}

impl SpawnedWorker {
    /// Launches `serve_bin --port 0 --allow-shutdown [extra args]` and waits
    /// for its startup line to learn the bound address.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures; fails with `InvalidData` when the child
    /// exits or misprints before announcing its address.
    pub fn launch(serve_bin: &Path, extra_args: &[String]) -> io::Result<SpawnedWorker> {
        let mut child = Command::new(serve_bin)
            .arg("--port")
            .arg("0")
            .arg("--allow-shutdown")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("worker stdout was not captured"))?;
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        for _ in 0..MAX_STARTUP_LINES {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                let _ = child.kill();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "worker exited before announcing its address",
                ));
            }
            if let Some(url) = line.trim().strip_prefix("olive-serve listening on ") {
                let addr = url
                    .strip_prefix("http://")
                    .unwrap_or(url)
                    .parse::<SocketAddr>()
                    .map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("worker announced unparseable address '{url}': {e}"),
                        )
                    })?;
                return Ok(SpawnedWorker {
                    child,
                    addr,
                    url: url.to_string(),
                    _stdout: Some(reader),
                });
            }
        }
        let _ = child.kill();
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "worker never printed its startup line",
        ))
    }

    /// The worker's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The worker's `http://host:port` URL as it announced it.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// Stops the worker: `POST /shutdown`, a bounded wait for a clean exit,
    /// then a kill if it lingers. Always reaps the child.
    pub fn stop(mut self) {
        let polite = Connection::open_with(self.addr, Timeouts::uniform(Duration::from_secs(2)))
            .and_then(|mut conn| conn.request("POST", "/shutdown", None));
        if polite.is_ok() {
            for _ in 0..MAX_EXIT_POLLS {
                match self.child.try_wait() {
                    Ok(Some(_)) => return,
                    Ok(None) => std::thread::sleep(Duration::from_millis(100)),
                    Err(_) => break,
                }
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
