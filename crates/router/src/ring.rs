//! The consistent-hashing ring that pins a model cache key to a worker.
//!
//! Each worker contributes [`VNODES`] virtual points on a 64-bit hash ring
//! (FNV-1a of `"{addr}#{vnode}"`); a request's routing key (its model cache
//! key — see `olive_serve::protocol`) hashes to a point and walks clockwise
//! to the first worker point. Virtual nodes smooth the load split, and the
//! scheme gives the two properties the router needs:
//!
//! * **Affinity** — the same key always lands on the same worker, so each
//!   worker's `ModelCache` only ever prepares the models routed to it:
//!   quantize-once-serve-many keeps holding across a fleet.
//! * **Minimal remapping** — adding or removing one worker only moves the
//!   keys whose ring arcs that worker owned; every other key keeps its
//!   worker and therefore its warm cache.
//!
//! [`Ring::candidates`] returns *all* workers in ring order from the key's
//! point (first = the owner, rest = failover order), so retry policy lives in
//! the server, not here. The walk is deterministic: two routers configured
//! with the same worker list compute identical candidate orders.

/// Virtual points each worker contributes to the ring. 64 keeps the load
/// split within a few percent of even for small fleets while the sorted
/// point list stays tiny (N × 64 entries).
pub const VNODES: u32 = 64;

/// FNV-1a 64-bit — the same hash the artifact container and file naming use
/// (`olive_models::artifact`), re-implemented here so the ring depends only
/// on the key bytes, not on another crate's internals.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The splitmix64 finalizer. FNV-1a avalanches poorly into its *high* bits
/// for short, similar inputs (`addr#0`…`addr#63`), and ring position is
/// decided by exactly those bits — without this mix a 3-worker ring splits
/// as badly as 60/16/24. Applied to both point placement and key lookup.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A ring position: well-mixed 64-bit hash of `bytes`.
fn point(bytes: &[u8]) -> u64 {
    mix64(fnv1a64(bytes))
}

/// A fixed ring over the configured worker list. Workers are identified by
/// their index into that list; the server owns the addresses and health
/// state.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, worker_index)`, sorted by point. Ties (vanishingly rare with
    /// 64-bit points) are broken by worker index, keeping construction
    /// deterministic regardless of insertion order.
    points: Vec<(u64, usize)>,
    workers: usize,
}

impl Ring {
    /// Builds the ring for `addrs` (one point set per worker, in list
    /// order). An empty list yields an empty ring whose
    /// [`Ring::candidates`] is always empty.
    pub fn new(addrs: &[String]) -> Ring {
        let mut points = Vec::with_capacity(addrs.len() * VNODES as usize);
        for (index, addr) in addrs.iter().enumerate() {
            for vnode in 0..VNODES {
                points.push((point(format!("{addr}#{vnode}").as_bytes()), index));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            workers: addrs.len(),
        }
    }

    /// Number of workers the ring was built over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The index of the worker owning `key`, if the ring is non-empty.
    pub fn owner(&self, key: &str) -> Option<usize> {
        self.candidates(key).into_iter().next()
    }

    /// Every worker index in ring order starting at `key`'s point: the
    /// first entry owns the key, the rest are the failover order. Each
    /// worker appears exactly once (its first point encountered on the
    /// walk); the result is empty only for an empty ring.
    pub fn candidates(&self, key: &str) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let key_point = point(key.as_bytes());
        // First ring point at or after the key's point; wrap past the end.
        let start = self.points.partition_point(|&(p, _)| p < key_point);
        let mut seen = vec![false; self.workers];
        let mut order = Vec::with_capacity(self.workers);
        for &(_, index) in self.points.iter().skip(start).chain(self.points.iter()) {
            if let Some(flag) = seen.get_mut(index) {
                if !*flag {
                    *flag = true;
                    order.push(index);
                    if order.len() == self.workers {
                        break;
                    }
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn candidates_are_deterministic_and_cover_every_worker_once() {
        let ring = Ring::new(&addrs(5));
        for key in ["family=gpt-tiny;seed=7", "k2", "a;b;c", ""] {
            let first = ring.candidates(key);
            assert_eq!(first, ring.candidates(key), "same key, same order");
            let mut sorted = first.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "each worker exactly once");
        }
        // An independently-built identical ring agrees (two router processes
        // with the same --worker list route identically).
        let other = Ring::new(&addrs(5));
        assert_eq!(
            ring.candidates("family=gpt-tiny;seed=7"),
            other.candidates("family=gpt-tiny;seed=7")
        );
    }

    #[test]
    fn load_split_is_roughly_even() {
        let ring = Ring::new(&addrs(3));
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            let key = format!("family=gpt-tiny;size=tiny;seed={i};prompt=11");
            counts[ring.owner(&key).unwrap()] += 1;
        }
        for (worker, &count) in counts.iter().enumerate() {
            assert!(
                (500..=1700).contains(&count),
                "worker {worker} got {count} of 3000 keys — split too skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_worker_only_remaps_its_own_keys() {
        let five = Ring::new(&addrs(5));
        let four = Ring::new(&addrs(4)); // drops the last worker
        let mut moved = 0usize;
        let total = 2000usize;
        for i in 0..total {
            let key = format!("key-{i}");
            let before = five.owner(&key).unwrap();
            let after = four.owner(&key).unwrap();
            if before < 4 {
                // Keys not owned by the removed worker must not move.
                assert_eq!(before, after, "key {key} moved without cause");
            } else {
                moved += 1;
            }
        }
        // The removed worker owned roughly a fifth of the keys.
        assert!(
            (total / 10..=total / 2).contains(&moved),
            "expected ~1/5 of keys to remap, got {moved}/{total}"
        );
    }

    #[test]
    fn failover_order_skips_the_owner_first() {
        let ring = Ring::new(&addrs(4));
        for i in 0..50 {
            let key = format!("key-{i}");
            let order = ring.candidates(&key);
            assert_eq!(order.len(), 4);
            assert_eq!(order.first(), ring.owner(&key).as_ref());
        }
    }

    #[test]
    fn empty_and_single_worker_rings_degenerate_sanely() {
        let empty = Ring::new(&[]);
        assert!(empty.candidates("k").is_empty());
        assert_eq!(empty.owner("k"), None);
        let single = Ring::new(&addrs(1));
        assert_eq!(single.candidates("k"), vec![0]);
    }
}
