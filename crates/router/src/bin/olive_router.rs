//! The `olive-router` daemon: the scale-out front door.
//!
//! ```text
//! olive-router [--addr HOST] [--port N]
//!              [--worker ADDR]... | [--spawn N [--serve-bin PATH] [--artifact-dir DIR]]
//!              [--max-attempts N] [--unhealthy-after N] [--probe-interval-ms N]
//!              [--retry-after-cap-ms N] [--allow-shutdown] [--trace-log PATH]
//!              [--no-telemetry]
//! ```
//!
//! Workers are either joined (`--worker host:port`, repeatable) or spawned
//! (`--spawn N` launches N `olive-serve` processes on ephemeral ports and
//! stops them on exit; `--serve-bin` overrides the binary, which defaults to
//! the `olive-serve` next to this executable). `--artifact-dir` is forwarded
//! to spawned workers so they cold-start from `olive-prepare` snapshots.
//!
//! `--port 0` (the default) picks an ephemeral port; the chosen URL is
//! printed as `olive-router listening on http://HOST:PORT` so harnesses can
//! scrape it, mirroring the worker daemon.
//!
//! `--trace-log PATH` appends every finished request trace as one JSON line
//! to PATH (see `GET /debug/trace` for the in-memory ring). `--no-telemetry`
//! turns off latency timing and tracing; counters, `/healthz` and `/metrics`
//! stay live, and proxied bytes are identical either way.

use olive_router::{Router, RouterConfig, SpawnedWorker};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: olive-router [--addr HOST] [--port N] [--worker ADDR]... \
         [--spawn N] [--serve-bin PATH] [--artifact-dir DIR] [--max-attempts N] \
         [--unhealthy-after N] [--probe-interval-ms N] [--retry-after-cap-ms N] \
         [--allow-shutdown] [--trace-log PATH] [--no-telemetry]"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("olive-router: {message}");
    std::process::exit(1);
}

struct Args {
    config: RouterConfig,
    host: String,
    port: u16,
    spawn: usize,
    serve_bin: Option<PathBuf>,
    artifact_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        config: RouterConfig::default(),
        host: "127.0.0.1".to_string(),
        port: 0,
        spawn: 0,
        serve_bin: None,
        artifact_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{name} requires a value");
                usage();
            }
        };
        match arg.as_str() {
            "--addr" => parsed.host = value("--addr"),
            "--port" => match value("--port").parse() {
                Ok(p) => parsed.port = p,
                Err(_) => usage(),
            },
            "--worker" => parsed.config.workers.push(value("--worker")),
            "--spawn" => match value("--spawn").parse() {
                Ok(n) if n >= 1 => parsed.spawn = n,
                _ => usage(),
            },
            "--serve-bin" => parsed.serve_bin = Some(PathBuf::from(value("--serve-bin"))),
            "--artifact-dir" => parsed.artifact_dir = Some(PathBuf::from(value("--artifact-dir"))),
            "--max-attempts" => match value("--max-attempts").parse() {
                Ok(n) if n >= 1 => parsed.config.max_attempts = n,
                _ => usage(),
            },
            "--unhealthy-after" => match value("--unhealthy-after").parse() {
                Ok(n) if n >= 1 => parsed.config.unhealthy_after = n,
                _ => usage(),
            },
            "--probe-interval-ms" => match value("--probe-interval-ms").parse() {
                Ok(ms) => parsed.config.probe_interval = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--retry-after-cap-ms" => match value("--retry-after-cap-ms").parse() {
                Ok(ms) => parsed.config.retry_after_cap = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--allow-shutdown" => parsed.config.allow_shutdown = true,
            "--trace-log" => {
                parsed.config.telemetry.trace_log = Some(PathBuf::from(value("--trace-log")));
            }
            "--no-telemetry" => parsed.config.telemetry.enabled = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

/// The `olive-serve` binary to spawn: `--serve-bin` when given, else the one
/// sitting next to this executable (both are built into the same target
/// directory), else whatever `olive-serve` resolves to on PATH.
fn serve_bin(parsed: &Args) -> PathBuf {
    if let Some(path) = &parsed.serve_bin {
        return path.clone();
    }
    if let Ok(me) = std::env::current_exe() {
        if let Some(dir) = me.parent() {
            let sibling = dir.join("olive-serve");
            if sibling.exists() {
                return sibling;
            }
        }
    }
    PathBuf::from("olive-serve")
}

fn main() {
    // Same guard as the workers: a typo'd OLIVE_THREADS must be a startup
    // error everywhere in the fleet, not a silently different config.
    if let Err(message) = olive_runtime::validate_thread_env() {
        eprintln!("olive-router: {message}");
        std::process::exit(2);
    }
    // And OLIVE_SIMD, which spawned workers inherit through the env.
    if let Err(message) = olive_core::validate_simd_env() {
        eprintln!("olive-router: {message}");
        std::process::exit(2);
    }
    let mut parsed = parse_args();
    if parsed.config.workers.is_empty() && parsed.spawn == 0 {
        eprintln!("no workers: pass --worker ADDR (repeatable) or --spawn N");
        usage();
    }

    let mut spawned: Vec<SpawnedWorker> = Vec::new();
    if parsed.spawn > 0 {
        let bin = serve_bin(&parsed);
        let mut extra = Vec::new();
        if let Some(dir) = &parsed.artifact_dir {
            extra.push("--artifact-dir".to_string());
            extra.push(dir.display().to_string());
        }
        for index in 0..parsed.spawn {
            match SpawnedWorker::launch(&bin, &extra) {
                Ok(worker) => {
                    println!("olive-router: spawned worker {index} on {}", worker.url());
                    parsed.config.workers.push(worker.addr().to_string());
                    spawned.push(worker);
                }
                Err(e) => {
                    for worker in spawned {
                        worker.stop();
                    }
                    fail(&format!("failed to spawn worker {index}: {e}"));
                }
            }
        }
    }

    parsed.config.addr = format!("{}:{}", parsed.host, parsed.port);
    let router = match Router::start(parsed.config) {
        Ok(router) => router,
        Err(e) => {
            for worker in spawned {
                worker.stop();
            }
            fail(&format!("failed to start: {e}"));
        }
    };
    // The exact line the smoke harness scrapes; flush so a piped stdout
    // delivers it immediately.
    println!("olive-router listening on {}", router.url());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    router.wait();
    for worker in spawned {
        worker.stop();
    }
    // Best-effort: the harness may have closed our stdout pipe already.
    let _ = writeln!(std::io::stdout(), "olive-router: shut down cleanly");
}
