//! # olive-router
//!
//! A zero-dependency HTTP front door that scales `olive-serve` horizontally:
//! N worker processes behind one address, with each request consistent-hashed
//! to the worker whose cache already holds its model. Everything is `std` —
//! the same `TcpListener` loop, HTTP/1.1 layer and client the serving crate
//! uses — so the whole scale-out story adds no dependency.
//!
//! ## Topology
//!
//! ```text
//!                         ┌──────────────┐   consistent hash of the
//!   clients ──────────────▶ olive-router │   request's model cache key
//!                         └──┬────┬────┬─┘
//!                            │    │    │
//!                   ┌────────┘    │    └────────┐
//!              ┌────▼─────┐ ┌─────▼────┐ ┌──────▼───┐
//!              │ worker 0 │ │ worker 1 │ │ worker 2 │   olive-serve,
//!              └──────────┘ └──────────┘ └──────────┘   optionally
//!                                                       --artifact-dir
//! ```
//!
//! The routing key is the request's **model cache key** (see
//! `olive_serve::protocol` — family/size/seed/batches/calibration for eval,
//! family/size/seed/prompt for generation), so every scheme variant of one
//! prepared model lands on the same worker and quantize-once-serve-many
//! keeps holding across the fleet. The [`ring`] gives minimal remapping:
//! resizing the fleet only moves the keys whose arcs changed hands.
//!
//! ## The routed-byte-identity contract
//!
//! A response proxied through the router is **byte-identical** to the same
//! request answered by a single worker directly:
//!
//! * unary bodies (`/v1/eval`, `/v1/quantize`, `/v1/schemes`) are relayed
//!   without modification;
//! * a streamed `/v1/generate` reply is relayed **chunk-by-chunk** as each
//!   chunk is decoded — chunks concatenated equal the direct response's
//!   chunks concatenated, and chunk boundaries themselves are preserved;
//! * because every worker computes identical bytes for the same request
//!   (the serving determinism contract of `olive_serve`), retry and
//!   fail-over can never change an answer — only whether one arrives.
//!
//! `crates/router/tests/routed.rs` enforces this end to end against live
//! workers, including a kill-one-worker fail-over; `scripts/router_smoke.sh`
//! drives the same topology as real processes.
//!
//! ## Failure policy
//!
//! * A worker 503 (back-pressure) is retried once on the **same** worker
//!   after honouring its `Retry-After` (capped by
//!   [`RouterConfig::retry_after_cap`]), then failed over.
//! * A connect/read failure fails over immediately; nothing has reached the
//!   client. After [`RouterConfig::unhealthy_after`] consecutive failures a
//!   worker is demoted to last-resort until a background `/healthz` probe
//!   (every [`RouterConfig::probe_interval`]) sees it answer again.
//! * Once a stream's chunked head has been written, a mid-stream failure
//!   truncates the relay without the terminating chunk — exactly the framing
//!   error a direct connection to a dying worker produces — rather than
//!   risking duplicated bytes through a mid-stream fail-over.
//! * With no worker answering at all, the router sheds the request with its
//!   own `503` + `Retry-After: 1`.
//!
//! The router's `GET /healthz` doubles as an active probe: it reports
//! `workers`/`workers_healthy`, the router's own counters (served, retried,
//! failed-over, rejected), and the workers' numeric gauges summed under
//! `"upstream"`.
//!
//! ## Observability
//!
//! `GET /metrics` serves the same counters — plus a per-worker breakdown
//! (requests, retries, fail-overs, sheds, health transitions and a live
//! health gauge per worker) and per-endpoint latency histograms — as
//! Prometheus text exposition; see `crates/telemetry/METRICS.md` for the
//! full reference. Every proxied request is stamped with an `x-olive-trace`
//! header (generated here unless the client supplied one), which the worker
//! echoes and both daemons record span timelines under: `GET
//! /debug/trace?n=K` returns the most recent K. Telemetry is strictly out
//! of band — proxied bodies stay byte-identical with it on or off.
//!
//! ## Quickstart
//!
//! Spawn-and-route in one process (the `olive-router` binary wraps this as
//! `olive-router --spawn 3`; see the README's "Scale-out" section):
//!
//! ```no_run
//! use olive_router::{Router, RouterConfig};
//!
//! let router = Router::start(RouterConfig {
//!     workers: vec!["127.0.0.1:8001".into(), "127.0.0.1:8002".into()],
//!     ..RouterConfig::default()
//! })
//! .unwrap();
//! println!("routing on {}", router.url());
//! router.wait();
//! ```

pub mod ring;
pub mod server;
pub mod spawn;

pub use ring::{Ring, VNODES};
pub use server::{Router, RouterConfig};
pub use spawn::SpawnedWorker;
