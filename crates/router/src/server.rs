//! The router daemon: accept loop, request proxying, retry and health state.
//!
//! One thread per client connection (mirroring `olive_serve::server`), plus
//! a background probe thread that re-checks unhealthy workers. All shared
//! state is atomics — the request path takes no locks, so a slow worker can
//! never stall an unrelated request through the router itself.

use crate::ring::Ring;
use olive_api::JsonValue;
use olive_runtime::lock_or_recover;
use olive_serve::client::{Connection, HttpResponse, Timeouts};
use olive_serve::http::{
    read_request, write_chunk, write_chunked_head_with, write_last_chunk, ReadOutcome, Request,
    Response, IDLE_TIMEOUT,
};
use olive_serve::{EvalRequest, GenerateRequest, QuantizeRequest, TRACE_HEADER};
use olive_telemetry::{latency_buckets_us, Counter, Gauge, Registry, Span, Stopwatch, Telemetry};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a kept-alive client connection may sit idle before the router
/// closes it, in units of [`IDLE_TIMEOUT`] polling ticks (20 × 500 ms = 10 s)
/// — the same policy the workers apply to their own connections.
const MAX_IDLE_TICKS: u32 = 20;

/// Timeout for health probes and `/healthz` aggregation fetches: these hit
/// an endpoint that never computes anything, so a worker that cannot answer
/// within this budget is treated as down.
const PROBE_TIMEOUT: Duration = Duration::from_millis(500);

/// The numeric worker gauges summed into the router's `/healthz` under
/// `"upstream"`, in the workers' own key order. `decode_batch_sizes` (an
/// object histogram) is deliberately absent: summing per-size counts across
/// workers is still meaningful, but the router reports fleet totals, not
/// merged histograms.
const WORKER_GAUGES: [&str; 13] = [
    "requests_served",
    "requests_rejected",
    "batches_executed",
    "queue_depth",
    "connections_accepted",
    "cached_models",
    "cached_generators",
    "cached_responses",
    "cached_artifacts",
    "decode_sessions",
    "decode_ticks",
    "kv_pages_used",
    "kv_pages_free",
];

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Router::local_addr`]).
    pub addr: String,
    /// Worker addresses (`host:port`, with or without an `http://` prefix),
    /// in the order that defines their ring identity. Two routers configured
    /// with the same list route identically.
    pub workers: Vec<String>,
    /// Most *distinct* workers tried per request before answering 503.
    pub max_attempts: u32,
    /// Upper bound on honouring a worker's `Retry-After` before the
    /// same-worker retry — a worker advertising a long back-off should not
    /// pin a router connection for that long.
    pub retry_after_cap: Duration,
    /// Consecutive failures after which a worker is marked unhealthy and
    /// only reached again once a probe succeeds (or as a last resort when
    /// every candidate is unhealthy).
    pub unhealthy_after: u32,
    /// How often the probe thread re-checks unhealthy workers.
    pub probe_interval: Duration,
    /// Timeouts for proxied requests to workers. The read timeout bounds
    /// each streamed chunk gap, so a hung worker surfaces as a failure
    /// instead of a stalled client.
    pub timeouts: Timeouts,
    /// Whether `POST /shutdown` stops the *router* (workers are unaffected;
    /// the daemon binary separately stops workers it spawned itself).
    pub allow_shutdown: bool,
    /// Observability switches (latency timing, tracing, `--trace-log`).
    /// Counters and gauges stay live even when `enabled` is off — `/healthz`
    /// and `/metrics` depend on them.
    pub telemetry: olive_telemetry::TelemetryOptions,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: Vec::new(),
            max_attempts: 3,
            retry_after_cap: Duration::from_secs(1),
            unhealthy_after: 3,
            probe_interval: Duration::from_millis(500),
            timeouts: Timeouts::DEFAULT,
            allow_shutdown: false,
            telemetry: olive_telemetry::TelemetryOptions::default(),
        }
    }
}

/// Per-worker health state and routing counters, updated lock-free from
/// request and probe threads. The counters carry a `worker` label so
/// `/metrics` breaks the fleet down per worker.
struct WorkerSlot {
    addr: String,
    sock: SocketAddr,
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    /// Responses served to clients from this worker.
    routed: Counter,
    /// Same-worker retries after this worker answered 503.
    retries: Counter,
    /// Fail-overs *away* from this worker (it failed or stayed backed up).
    failovers: Counter,
    /// Requests shed with 503 after this worker was the last one tried.
    sheds: Counter,
    /// Health flips, labelled by the state entered. Steady-state probe
    /// successes do not count — only actual transitions.
    became_healthy: Counter,
    became_unhealthy: Counter,
    /// 1 while the worker is considered healthy; refreshed at scrape time.
    healthy_gauge: Gauge,
}

impl WorkerSlot {
    fn new(addr: String, sock: SocketAddr, registry: &Registry) -> WorkerSlot {
        let label = [("worker", addr.as_str())];
        WorkerSlot {
            routed: registry.counter_with(
                "olive_router_worker_requests_total",
                "Responses served to clients from this worker.",
                &label,
            ),
            retries: registry.counter_with(
                "olive_router_worker_retries_total",
                "Same-worker retries after a 503 from this worker.",
                &label,
            ),
            failovers: registry.counter_with(
                "olive_router_worker_failovers_total",
                "Fail-overs away from this worker to the next candidate.",
                &label,
            ),
            sheds: registry.counter_with(
                "olive_router_worker_sheds_total",
                "Requests shed with 503 after this worker was the last one tried.",
                &label,
            ),
            became_healthy: registry.counter_with(
                "olive_router_worker_health_transitions_total",
                "Health-state flips, labelled by the state entered.",
                &[("to", "healthy"), ("worker", addr.as_str())],
            ),
            became_unhealthy: registry.counter_with(
                "olive_router_worker_health_transitions_total",
                "Health-state flips, labelled by the state entered.",
                &[("to", "unhealthy"), ("worker", addr.as_str())],
            ),
            healthy_gauge: registry.gauge_with(
                "olive_router_worker_healthy",
                "1 while the worker is considered healthy, 0 otherwise.",
                &label,
            ),
            addr,
            sock,
            healthy: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
        }
    }
}

/// The router's own request counters (fleet-wide; per-worker breakdowns
/// live on the [`WorkerSlot`]s).
struct RouterCounters {
    served: Counter,
    retried: Counter,
    failed_over: Counter,
    rejected: Counter,
    connections: Counter,
}

impl RouterCounters {
    fn new(registry: &Registry) -> RouterCounters {
        RouterCounters {
            served: registry.counter(
                "olive_router_requests_served_total",
                "Requests answered from a worker (after any retries).",
            ),
            retried: registry.counter(
                "olive_router_requests_retried_total",
                "Same-worker retries after a worker answered 503.",
            ),
            failed_over: registry.counter(
                "olive_router_requests_failed_over_total",
                "Attempts moved to a different worker after a failure or persistent 503.",
            ),
            rejected: registry.counter(
                "olive_router_requests_rejected_total",
                "Requests shed with 503 after every candidate was exhausted.",
            ),
            connections: registry.counter(
                "olive_router_connections_accepted_total",
                "Client TCP connections accepted since startup.",
            ),
        }
    }
}

struct RouterState {
    config: RouterConfig,
    ring: Ring,
    workers: Vec<WorkerSlot>,
    counters: RouterCounters,
    telemetry: Telemetry,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
}

impl RouterState {
    /// One per-request observation, mirroring the workers' scheme: a
    /// labelled count by endpoint and status class, and (timing on) the
    /// wall-clock service latency.
    fn record_request(&self, endpoint: &str, status: u16, served: &Stopwatch) {
        let class = match status {
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        let registry = self.telemetry.registry();
        registry
            .counter_with(
                "olive_router_http_requests_total",
                "Requests handled at the front door, by endpoint and status class.",
                &[("endpoint", endpoint), ("status", class)],
            )
            .inc();
        registry
            .histogram_with(
                "olive_router_http_request_duration_us",
                "Wall-clock request service time at the router, in microseconds.",
                &latency_buckets_us(),
                &[("endpoint", endpoint)],
            )
            .observe_elapsed(served);
    }

    /// Mirrors each worker's health bit onto its gauge.
    fn refresh_gauges(&self) {
        for worker in &self.workers {
            worker
                .healthy_gauge
                .set(u64::from(worker.healthy.load(Ordering::SeqCst)));
        }
    }
}

/// The label value for the `endpoint` dimension: known paths verbatim,
/// everything else collapsed to `other` so scans cannot explode metric
/// cardinality.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/debug/trace" => "/debug/trace",
        "/v1/schemes" => "/v1/schemes",
        "/v1/eval" => "/v1/eval",
        "/v1/generate" => "/v1/generate",
        "/v1/quantize" => "/v1/quantize",
        "/shutdown" => "/shutdown",
        _ => "other",
    }
}

/// Everything observed about one in-flight request: the trace id the
/// router stamps on worker requests and echoes to the client, the span it
/// feeds, and the service stopwatch. Purely observational — dropping all of
/// it changes no response byte.
struct RequestScope {
    endpoint: &'static str,
    trace_id: Option<String>,
    span: Option<Arc<Span>>,
    served: Stopwatch,
}

impl RequestScope {
    fn begin(state: &RouterState, request: &Request) -> RequestScope {
        let tracer = state.telemetry.tracer();
        let trace_id = match request.header(TRACE_HEADER) {
            Some(id) => Some(id.to_string()),
            None => tracer.enabled().then(|| tracer.new_trace_id()),
        };
        let endpoint = endpoint_label(&request.path);
        let span = trace_id.as_deref().and_then(|id| tracer.span(id, endpoint));
        if let Some(span) = &span {
            span.event("accepted");
        }
        RequestScope {
            endpoint,
            trace_id,
            span,
            served: state.telemetry.stopwatch(),
        }
    }

    /// The `x-olive-trace` header pair(s) to stamp on worker requests and
    /// client responses. Empty when tracing is off and the client sent none.
    fn headers(&self) -> Vec<(String, String)> {
        self.trace_id
            .iter()
            .map(|id| (TRACE_HEADER.to_string(), id.clone()))
            .collect()
    }

    /// Borrowed form for the worker-side client API.
    fn header_refs(&self) -> Vec<(&str, &str)> {
        self.trace_id
            .iter()
            .map(|id| (TRACE_HEADER, id.as_str()))
            .collect()
    }

    /// Records the final status and closes the span. Called exactly once
    /// per request, after the response bytes are on the wire.
    fn finish(&self, state: &RouterState, status: u16) {
        state.record_request(self.endpoint, status, &self.served);
        if let Some(span) = &self.span {
            span.finish();
        }
    }
}

/// A running router. Mirrors `olive_serve::Server`: drop without
/// [`Router::shutdown`] leaves the accept thread running for the life of the
/// process.
pub struct Router {
    state: Arc<RouterState>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
    probe_handle: Mutex<Option<JoinHandle<()>>>,
}

impl Router {
    /// Binds the front door and starts the accept and probe threads;
    /// returns once the listener is accepting. Workers are *not* contacted
    /// here — a router can start ahead of its fleet and pick workers up as
    /// probes and requests reach them.
    ///
    /// # Errors
    ///
    /// Propagates bind failures, unresolvable worker addresses and
    /// trace-log open failures.
    pub fn start(config: RouterConfig) -> io::Result<Router> {
        let telemetry = Telemetry::new(&config.telemetry)?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let mut workers = Vec::with_capacity(config.workers.len());
        for addr in &config.workers {
            workers.push(WorkerSlot::new(
                addr.clone(),
                resolve_worker(addr)?,
                telemetry.registry(),
            ));
        }
        let state = Arc::new(RouterState {
            ring: Ring::new(&config.workers),
            workers,
            counters: RouterCounters::new(telemetry.registry()),
            telemetry,
            shutdown: AtomicBool::new(false),
            local_addr,
            config,
        });
        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::Builder::new()
            .name("olive-router-accept".into())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        let probe_state = Arc::clone(&state);
        let probe_handle = std::thread::Builder::new()
            .name("olive-router-probe".into())
            .spawn(move || probe_loop(&probe_state))?;
        Ok(Router {
            state,
            accept_handle: Mutex::new(Some(accept_handle)),
            probe_handle: Mutex::new(Some(probe_handle)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// `http://host:port` of the bound address.
    pub fn url(&self) -> String {
        format!("http://{}", self.state.local_addr)
    }

    /// True once shutdown has been requested (via [`Router::shutdown`] or
    /// `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until shutdown is requested, then joins the background
    /// threads. The daemon binary's main loop.
    pub fn wait(&self) {
        if let Some(handle) = lock_or_recover(&self.accept_handle).take() {
            let _ = handle.join();
        }
        if let Some(handle) = lock_or_recover(&self.probe_handle).take() {
            let _ = handle.join();
        }
    }

    /// Requests shutdown and waits for it to complete. Idempotent. Workers
    /// keep running: the router owns only its own process.
    pub fn shutdown(&self) {
        request_shutdown(&self.state);
        self.wait();
    }
}

/// Resolves a `--worker` address, accepting the `http://host:port` form the
/// workers print at startup as well as a bare `host:port`.
fn resolve_worker(addr: &str) -> io::Result<SocketAddr> {
    let bare = addr.strip_prefix("http://").unwrap_or(addr);
    let bare = bare.trim_end_matches('/');
    bare.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("worker address '{addr}' did not resolve"),
        )
    })
}

/// Flags shutdown and pokes the listener so the accept loop observes it.
fn request_shutdown(state: &RouterState) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = TcpStream::connect(state.local_addr);
}

fn accept_loop(listener: &TcpListener, state: &Arc<RouterState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        state.counters.connections.inc();
        let state = Arc::clone(state);
        // Connection threads are detached: they exit on their own via
        // keep-alive idle polling once shutdown is flagged.
        let _ = std::thread::Builder::new()
            .name("olive-router-conn".into())
            .spawn(move || handle_connection(stream, &state));
    }
}

/// Re-checks unhealthy workers every `probe_interval`, marking them healthy
/// again as soon as their `/healthz` answers. Sleeps in short ticks so
/// shutdown is observed promptly.
fn probe_loop(state: &RouterState) {
    let tick =
        Duration::from_millis(50).min(state.config.probe_interval.max(Duration::from_millis(1)));
    let mut slept = Duration::ZERO;
    while !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        slept += tick;
        if slept < state.config.probe_interval {
            continue;
        }
        slept = Duration::ZERO;
        for worker in &state.workers {
            if worker.healthy.load(Ordering::SeqCst) {
                continue;
            }
            if fetch_worker_healthz(worker).is_ok() {
                record_success(worker);
            }
        }
    }
}

fn record_success(worker: &WorkerSlot) {
    worker.consecutive_failures.store(0, Ordering::SeqCst);
    if !worker.healthy.swap(true, Ordering::SeqCst) {
        worker.became_healthy.inc();
    }
}

fn record_failure(worker: &WorkerSlot, unhealthy_after: u32) {
    let failures = worker.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
    if failures >= unhealthy_after && worker.healthy.swap(false, Ordering::SeqCst) {
        worker.became_unhealthy.inc();
    }
}

fn handle_connection(stream: TcpStream, state: &RouterState) {
    if stream.set_read_timeout(Some(IDLE_TIMEOUT)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut idle_ticks = 0u32;
    loop {
        match read_request(&mut reader) {
            ReadOutcome::Disconnected => return,
            ReadOutcome::Idle => {
                idle_ticks += 1;
                if idle_ticks >= MAX_IDLE_TICKS || state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            ReadOutcome::Bad(error) => {
                let _ = Response::error(error.status, &error.message).write_to(&mut writer, false);
                return;
            }
            ReadOutcome::Request(request) => {
                idle_ticks = 0;
                let scope = RequestScope::begin(state, &request);
                match handle_request(&request, state, &scope, &mut writer) {
                    AfterResponse::KeepAlive => {}
                    AfterResponse::Close => return,
                }
            }
        }
    }
}

/// Whether the connection survives the response just written.
enum AfterResponse {
    KeepAlive,
    Close,
}

fn handle_request(
    request: &Request,
    state: &RouterState,
    scope: &RequestScope,
    writer: &mut TcpStream,
) -> AfterResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => write_unary(
            Response::json(200, healthz_body(state)),
            request,
            state,
            scope,
            writer,
            false,
        ),
        ("GET", "/metrics") => {
            state.refresh_gauges();
            write_unary(
                Response::text(200, state.telemetry.registry().render()),
                request,
                state,
                scope,
                writer,
                false,
            )
        }
        ("GET", "/debug/trace") => {
            let n = request
                .query_param("n")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(32);
            let traces: Vec<String> = state
                .telemetry
                .tracer()
                .recent(n)
                .iter()
                .map(olive_telemetry::TraceRecord::to_json)
                .collect();
            write_unary(
                Response::json(200, format!("{{\"traces\": [{}]}}", traces.join(", "))),
                request,
                state,
                scope,
                writer,
                false,
            )
        }
        // The registry is static and identical on every worker; route it
        // like any other key so the load spreads deterministically.
        ("GET", "/v1/schemes") => proxy_unary(request, "schemes", state, scope, writer),
        ("POST", "/v1/eval" | "/v1/quantize") => match routing_key(request) {
            Ok(key) => proxy_unary(request, &key, state, scope, writer),
            Err(response) => write_unary(response, request, state, scope, writer, false),
        },
        ("POST", "/v1/generate") => match routing_key(request) {
            Ok(key) => proxy_stream(request, &key, state, scope, writer),
            Err(response) => write_unary(response, request, state, scope, writer, false),
        },
        ("POST", "/shutdown") => {
            if state.config.allow_shutdown {
                write_unary(
                    Response::json(
                        200,
                        JsonValue::object(vec![("status", JsonValue::Str("shutting down".into()))])
                            .render(),
                    ),
                    request,
                    state,
                    scope,
                    writer,
                    true,
                )
            } else {
                write_unary(
                    Response::error(
                        403,
                        "shutdown over HTTP is disabled (start with --allow-shutdown)",
                    ),
                    request,
                    state,
                    scope,
                    writer,
                    false,
                )
            }
        }
        // Known path, wrong method — same parity answers as the workers.
        (_, "/healthz" | "/metrics" | "/debug/trace" | "/v1/schemes") => write_unary(
            Response::error(405, "use GET").with_header("Allow", "GET"),
            request,
            state,
            scope,
            writer,
            false,
        ),
        (_, "/v1/eval" | "/v1/generate" | "/v1/quantize" | "/shutdown") => write_unary(
            Response::error(405, "use POST").with_header("Allow", "POST"),
            request,
            state,
            scope,
            writer,
            false,
        ),
        (_, path) => write_unary(
            Response::error(
                404,
                &format!(
                    "no such endpoint '{path}' (have: GET /healthz, GET /metrics, \
                     GET /v1/schemes, POST /v1/eval, POST /v1/generate, POST /v1/quantize)"
                ),
            ),
            request,
            state,
            scope,
            writer,
            false,
        ),
    }
}

/// Writes a router-composed (non-streamed) response, honouring keep-alive
/// and triggering router shutdown after the bytes are on the wire. Stamps
/// the trace header (unless an upstream relay already carries it) and
/// closes out the request's observations.
fn write_unary(
    mut response: Response,
    request: &Request,
    state: &RouterState,
    scope: &RequestScope,
    writer: &mut TcpStream,
    shutdown: bool,
) -> AfterResponse {
    for (name, value) in scope.headers() {
        if !response
            .extra_headers
            .iter()
            .any(|(existing, _)| existing.eq_ignore_ascii_case(&name))
        {
            response = response.with_header(&name, &value);
        }
    }
    let status = response.status;
    let keep_alive = request.keep_alive() && !shutdown && !state.shutdown.load(Ordering::SeqCst);
    // Telemetry commits before the reply is on the wire: a client that saw
    // a complete response must also see it counted in /metrics and traced
    // in /debug/trace.
    scope.finish(state, status);
    let write_result = response.write_to(writer, keep_alive);
    if shutdown {
        request_shutdown(state);
    }
    if write_result.is_ok() && keep_alive {
        AfterResponse::KeepAlive
    } else {
        AfterResponse::Close
    }
}

/// The routing key for a request: its model cache key when the body decodes
/// (so a request lands on the worker whose cache already holds its model),
/// the raw body otherwise (an invalid body routes *somewhere* deterministic
/// and the worker answers the same 400 any worker would).
fn routing_key(request: &Request) -> Result<String, Response> {
    let text = match request.body_utf8() {
        Ok(text) => text,
        Err(e) => return Err(Response::error(e.status, &e.message)),
    };
    let decoded = JsonValue::parse(text)
        .ok()
        .and_then(|json| match request.path.as_str() {
            "/v1/eval" => EvalRequest::decode(&json).ok().map(|r| r.prepared_key()),
            "/v1/generate" => GenerateRequest::decode(&json)
                .ok()
                .map(|r| r.prepared_key()),
            "/v1/quantize" => QuantizeRequest::decode(&json)
                .ok()
                .map(|r| format!("quantize;scheme={}", r.scheme)),
            _ => None,
        });
    Ok(decoded.unwrap_or_else(|| text.to_string()))
}

/// The worker indices to try for `key`, in order: the ring's candidate walk
/// with healthy workers first (unhealthy ones stay as a last resort — with
/// the whole fleet marked down, trying is still better than rejecting),
/// truncated to `max_attempts`.
fn plan(state: &RouterState, key: &str) -> Vec<usize> {
    let order = state.ring.candidates(key);
    let mut planned = Vec::with_capacity(order.len());
    for &index in &order {
        if state
            .workers
            .get(index)
            .is_some_and(|w| w.healthy.load(Ordering::SeqCst))
        {
            planned.push(index);
        }
    }
    for &index in &order {
        if !planned.contains(&index) {
            planned.push(index);
        }
    }
    planned.truncate(state.config.max_attempts.max(1) as usize);
    planned
}

/// How long to sleep before the same-worker retry of a 503: the worker's
/// `Retry-After` (defaulting to 1 s when absent or unparseable), capped.
fn retry_delay(response: &HttpResponse, cap: Duration) -> Duration {
    let seconds = response
        .header("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(1);
    Duration::from_secs(seconds).min(cap)
}

/// Records one same-worker 503 retry (fleet total + per-worker).
fn count_retry(state: &RouterState, worker: &WorkerSlot) {
    state.counters.retried.inc();
    worker.retries.inc();
}

/// Records one fail-over away from `worker` to the next candidate.
fn count_failover(state: &RouterState, worker: &WorkerSlot) {
    state.counters.failed_over.inc();
    worker.failovers.inc();
}

/// Records a request served to the client from `worker`.
fn count_served(state: &RouterState, worker: &WorkerSlot) {
    state.counters.served.inc();
    worker.routed.inc();
}

/// Records a shed request (every candidate exhausted), attributed to the
/// last worker tried.
fn count_shed(state: &RouterState, planned: &[usize]) {
    state.counters.rejected.inc();
    if let Some(worker) = planned.last().and_then(|&index| state.workers.get(index)) {
        worker.sheds.inc();
    }
}

/// Re-frames a worker response for the client, preserving the body bytes
/// exactly and relaying the headers that carry semantics (`Retry-After` on a
/// 503, `Allow` on a 405, the `x-olive-trace` echo).
fn relay(response: &HttpResponse) -> Response {
    let mut out = Response::json(response.status, response.body.clone());
    for name in ["Retry-After", "Allow", TRACE_HEADER] {
        if let Some(value) = response.header(name) {
            out = out.with_header(name, value);
        }
    }
    out
}

/// One worker attempt for a unary endpoint: a single proxied request, plus
/// one same-worker retry when the worker sheds load with a 503 (honouring
/// its `Retry-After`, capped) — transient back-pressure usually clears
/// within the advertised window.
fn attempt_unary(
    state: &RouterState,
    worker: &WorkerSlot,
    request: &Request,
    body: Option<&str>,
    trace_headers: &[(&str, &str)],
) -> io::Result<HttpResponse> {
    let mut conn = Connection::open_with(worker.sock, state.config.timeouts)?;
    let response =
        conn.request_with_headers(&request.method, &request.path, body, trace_headers)?;
    if response.status != 503 {
        return Ok(response);
    }
    count_retry(state, worker);
    std::thread::sleep(retry_delay(&response, state.config.retry_after_cap));
    conn.request_with_headers(&request.method, &request.path, body, trace_headers)
}

/// Proxies a unary request along the candidate plan. Responses are relayed
/// byte-for-byte — because every worker computes identical bytes for the
/// same request (the serving determinism contract), failing over can never
/// change the answer, only whether one arrives.
fn proxy_unary(
    request: &Request,
    key: &str,
    state: &RouterState,
    scope: &RequestScope,
    writer: &mut TcpStream,
) -> AfterResponse {
    let body = match request.body_utf8() {
        Ok(text) if !text.is_empty() => Some(text),
        Ok(_) => None,
        Err(e) => {
            return write_unary(
                Response::error(e.status, &e.message),
                request,
                state,
                scope,
                writer,
                false,
            )
        }
    };
    let trace_headers = scope.header_refs();
    let planned = plan(state, key);
    let total = planned.len();
    for (attempt, &index) in planned.iter().enumerate() {
        let Some(worker) = state.workers.get(index) else {
            continue;
        };
        match attempt_unary(state, worker, request, body, &trace_headers) {
            Ok(response) => {
                record_success(worker);
                if response.status == 503 && attempt + 1 < total {
                    // Still backed up after the same-worker retry: any other
                    // worker produces identical bytes, so fail over.
                    count_failover(state, worker);
                    continue;
                }
                count_served(state, worker);
                return write_unary(relay(&response), request, state, scope, writer, false);
            }
            Err(_) => {
                record_failure(worker, state.config.unhealthy_after);
                if attempt + 1 < total {
                    count_failover(state, worker);
                }
            }
        }
    }
    count_shed(state, &planned);
    write_unary(
        Response::error(503, "no worker available for this request")
            .with_header("Retry-After", "1"),
        request,
        state,
        scope,
        writer,
        false,
    )
}

/// The outcome of one streaming attempt against one worker.
enum StreamAttempt {
    /// The full stream was relayed; `reusable` says whether the client
    /// connection's framing survived (the terminating chunk was written).
    Streamed { reusable: bool },
    /// The worker answered a plain (non-chunked) response — an error —
    /// before any byte reached the client.
    Unary(HttpResponse),
    /// The attempt failed before any byte reached the client: safe to fail
    /// over to the next candidate.
    NotStarted(#[allow(dead_code)] io::Error),
    /// The attempt failed after the chunked head was written. The relay is
    /// truncated without the terminating chunk — the client sees a hard
    /// framing error, never a complete-looking answer — and the connection
    /// closes. `worker_fault` distinguishes a worker dying mid-stream from
    /// the client going away.
    Broken { worker_fault: bool },
}

/// One streaming attempt: the worker's chunks are relayed to the client the
/// moment each is decoded (chunk boundaries preserved), so a routed stream
/// is byte- and framing-identical to hitting the worker directly. Includes
/// the same single same-worker 503 retry as the unary path — nothing has
/// been written to the client at that point.
fn attempt_stream(
    state: &RouterState,
    worker: &WorkerSlot,
    request: &Request,
    body: Option<&str>,
    scope: &RequestScope,
    writer: &mut TcpStream,
    keep_alive: bool,
) -> StreamAttempt {
    let mut conn = match Connection::open_with(worker.sock, state.config.timeouts) {
        Ok(conn) => conn,
        Err(e) => return StreamAttempt::NotStarted(e),
    };
    let trace_headers = scope.header_refs();
    let echo_headers = scope.headers();
    let mut retried_503 = false;
    loop {
        let mut started = false;
        let mut sink_error = false;
        let result = conn.request_with_sink_and_headers(
            &request.method,
            &request.path,
            body,
            &mut |chunk| {
                let relayed = if started {
                    write_chunk(writer, chunk)
                } else {
                    write_chunked_head_with(writer, 200, keep_alive, &echo_headers).and_then(|()| {
                        started = true;
                        if let Some(span) = &scope.span {
                            span.event("first-byte");
                        }
                        write_chunk(writer, chunk)
                    })
                };
                if relayed.is_err() {
                    sink_error = true;
                }
                relayed
            },
            &trace_headers,
        );
        return match result {
            Ok(response) if response.chunks.is_some() => {
                // Telemetry commits before the terminating chunk: a client
                // that saw a complete stream must also see it counted in
                // /metrics and traced in /debug/trace.
                record_success(worker);
                count_served(state, worker);
                scope.finish(state, 200);
                let finished = if started {
                    write_last_chunk(writer)
                } else {
                    // A complete but empty stream still frames as chunked.
                    write_chunked_head_with(writer, 200, keep_alive, &echo_headers)
                        .and_then(|()| write_last_chunk(writer))
                };
                StreamAttempt::Streamed {
                    reusable: finished.is_ok(),
                }
            }
            Ok(response) => {
                if response.status == 503 && !retried_503 {
                    retried_503 = true;
                    count_retry(state, worker);
                    std::thread::sleep(retry_delay(&response, state.config.retry_after_cap));
                    continue;
                }
                StreamAttempt::Unary(response)
            }
            Err(_) if sink_error => StreamAttempt::Broken {
                worker_fault: false,
            },
            Err(_) if started => StreamAttempt::Broken { worker_fault: true },
            Err(e) => StreamAttempt::NotStarted(e),
        };
    }
}

/// Proxies `/v1/generate` along the candidate plan, streaming chunk-by-chunk.
/// Fail-over happens only while nothing has reached the client; once the
/// chunked head is out, a failure truncates the stream exactly as a worker
/// death would on a direct connection.
fn proxy_stream(
    request: &Request,
    key: &str,
    state: &RouterState,
    scope: &RequestScope,
    writer: &mut TcpStream,
) -> AfterResponse {
    let body = match request.body_utf8() {
        Ok(text) if !text.is_empty() => Some(text),
        Ok(_) => None,
        Err(e) => {
            return write_unary(
                Response::error(e.status, &e.message),
                request,
                state,
                scope,
                writer,
                false,
            )
        }
    };
    let keep_alive = request.keep_alive() && !state.shutdown.load(Ordering::SeqCst);
    let planned = plan(state, key);
    let total = planned.len();
    for (attempt, &index) in planned.iter().enumerate() {
        let Some(worker) = state.workers.get(index) else {
            continue;
        };
        match attempt_stream(state, worker, request, body, scope, writer, keep_alive) {
            StreamAttempt::Streamed { reusable } => {
                // Success bookkeeping and scope.finish already ran inside
                // attempt_stream, before the terminating chunk went out.
                return if reusable && keep_alive {
                    AfterResponse::KeepAlive
                } else {
                    AfterResponse::Close
                };
            }
            StreamAttempt::Unary(response) => {
                record_success(worker);
                if response.status == 503 && attempt + 1 < total {
                    count_failover(state, worker);
                    continue;
                }
                count_served(state, worker);
                return write_unary(relay(&response), request, state, scope, writer, false);
            }
            StreamAttempt::NotStarted(_) => {
                record_failure(worker, state.config.unhealthy_after);
                if attempt + 1 < total {
                    count_failover(state, worker);
                }
            }
            StreamAttempt::Broken { worker_fault } => {
                if worker_fault {
                    record_failure(worker, state.config.unhealthy_after);
                }
                scope.finish(state, 200);
                return AfterResponse::Close;
            }
        }
    }
    count_shed(state, &planned);
    write_unary(
        Response::error(503, "no worker available for this request")
            .with_header("Retry-After", "1"),
        request,
        state,
        scope,
        writer,
        false,
    )
}

/// Fetches one worker's `/healthz` within [`PROBE_TIMEOUT`].
fn fetch_worker_healthz(worker: &WorkerSlot) -> io::Result<JsonValue> {
    let mut conn = Connection::open_with(worker.sock, Timeouts::uniform(PROBE_TIMEOUT))?;
    let response = conn.request("GET", "/healthz", None)?;
    if response.status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "worker {} healthz answered {}",
                worker.addr, response.status
            ),
        ));
    }
    JsonValue::parse(&response.body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// The router's own `/healthz`: fleet status plus router counters plus the
/// workers' numeric gauges summed under `"upstream"`. Fetching every
/// worker's healthz doubles as an active probe — a worker that answers here
/// is immediately healthy again, one that does not records a failure.
fn healthz_body(state: &RouterState) -> String {
    let mut sums = [0u64; WORKER_GAUGES.len()];
    let mut healthy = 0u64;
    for worker in &state.workers {
        match fetch_worker_healthz(worker) {
            Ok(json) => {
                healthy += 1;
                record_success(worker);
                for (key, total) in WORKER_GAUGES.iter().zip(sums.iter_mut()) {
                    if let Some(value) = json.get(key).and_then(JsonValue::as_u64) {
                        *total += value;
                    }
                }
            }
            Err(_) => record_failure(worker, state.config.unhealthy_after),
        }
    }
    let status = if healthy > 0 && healthy == state.workers.len() as u64 {
        "ok"
    } else if healthy > 0 {
        "degraded"
    } else {
        "unavailable"
    };
    let upstream = JsonValue::object(
        WORKER_GAUGES
            .iter()
            .zip(sums.iter())
            .map(|(key, total)| (*key, JsonValue::UInt(*total)))
            .collect::<Vec<_>>(),
    );
    JsonValue::object(vec![
        ("status", JsonValue::Str(status.into())),
        ("workers", JsonValue::UInt(state.workers.len() as u64)),
        ("workers_healthy", JsonValue::UInt(healthy)),
        (
            "requests_served",
            JsonValue::UInt(state.counters.served.get()),
        ),
        (
            "requests_retried",
            JsonValue::UInt(state.counters.retried.get()),
        ),
        (
            "requests_failed_over",
            JsonValue::UInt(state.counters.failed_over.get()),
        ),
        (
            "requests_rejected",
            JsonValue::UInt(state.counters.rejected.get()),
        ),
        (
            "connections_accepted",
            JsonValue::UInt(state.counters.connections.get()),
        ),
        ("upstream", upstream),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_workers(n: usize, max_attempts: u32) -> RouterState {
        let telemetry = Telemetry::detached();
        let addrs: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 9100 + i)).collect();
        RouterState {
            ring: Ring::new(&addrs),
            workers: addrs
                .iter()
                .map(|addr| {
                    WorkerSlot::new(addr.clone(), addr.parse().unwrap(), telemetry.registry())
                })
                .collect(),
            counters: RouterCounters::new(telemetry.registry()),
            telemetry,
            shutdown: AtomicBool::new(false),
            local_addr: "127.0.0.1:1".parse().unwrap(),
            config: RouterConfig {
                workers: addrs,
                max_attempts,
                ..RouterConfig::default()
            },
        }
    }

    #[test]
    fn plan_prefers_healthy_workers_but_keeps_unhealthy_as_last_resort() {
        let state = state_with_workers(3, 3);
        let key = "family=gpt-tiny;seed=7";
        let ring_order = state.ring.candidates(key);
        assert_eq!(plan(&state, key), ring_order, "all healthy: ring order");

        let owner = ring_order[0];
        state.workers[owner].healthy.store(false, Ordering::SeqCst);
        let reordered = plan(&state, key);
        assert_eq!(reordered.last(), Some(&owner), "unhealthy owner tried last");
        assert_eq!(reordered.len(), 3, "nobody is dropped, only demoted");
        let mut sorted = reordered.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn plan_truncates_to_max_attempts() {
        let state = state_with_workers(5, 2);
        assert_eq!(plan(&state, "k").len(), 2);
        let zero = state_with_workers(3, 0);
        assert_eq!(plan(&zero, "k").len(), 1, "max_attempts is clamped to 1");
    }

    #[test]
    fn consecutive_failures_flip_health_and_success_resets() {
        let state = state_with_workers(1, 1);
        let worker = &state.workers[0];
        record_failure(worker, 3);
        record_failure(worker, 3);
        assert!(worker.healthy.load(Ordering::SeqCst), "below threshold");
        record_failure(worker, 3);
        assert!(!worker.healthy.load(Ordering::SeqCst), "threshold reached");
        record_success(worker);
        assert!(worker.healthy.load(Ordering::SeqCst));
        assert_eq!(worker.consecutive_failures.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn health_transitions_count_flips_not_steady_state() {
        let state = state_with_workers(1, 1);
        let worker = &state.workers[0];
        // Repeated successes while already healthy: no transition.
        record_success(worker);
        record_success(worker);
        assert_eq!(worker.became_healthy.get(), 0);
        // Flip down once (threshold 1), then repeated failures stay down.
        record_failure(worker, 1);
        record_failure(worker, 1);
        assert_eq!(worker.became_unhealthy.get(), 1, "one flip, not two");
        // Recovery is one transition back.
        record_success(worker);
        assert_eq!(worker.became_healthy.get(), 1);
    }

    #[test]
    fn retry_delay_honours_the_header_and_the_cap() {
        let response = |headers: Vec<(&str, &str)>| HttpResponse {
            status: 503,
            headers: headers
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: String::new(),
            chunks: None,
        };
        let cap = Duration::from_millis(250);
        assert_eq!(
            retry_delay(&response(vec![("Retry-After", "0")]), cap),
            Duration::ZERO
        );
        assert_eq!(retry_delay(&response(vec![("retry-after", "7")]), cap), cap);
        assert_eq!(
            retry_delay(&response(vec![]), cap),
            cap,
            "default 1 s, capped"
        );
        assert_eq!(
            retry_delay(&response(vec![("Retry-After", "soon")]), cap),
            cap,
            "unparseable value falls back to the 1 s default"
        );
    }

    #[test]
    fn relay_preserves_the_body_and_semantic_headers_only() {
        let worker_response = HttpResponse {
            status: 503,
            headers: vec![
                ("Content-Length".to_string(), "42".to_string()),
                ("Retry-After".to_string(), "1".to_string()),
                ("Connection".to_string(), "close".to_string()),
            ],
            body: "{\"error\": \"service_unavailable\"}\n".to_string(),
            chunks: None,
        };
        let relayed = relay(&worker_response);
        assert_eq!(relayed.status, 503);
        assert_eq!(relayed.body, worker_response.body, "body bytes unchanged");
        assert_eq!(
            relayed.extra_headers,
            vec![("Retry-After".to_string(), "1".to_string())],
            "framing headers are re-derived, not copied"
        );
    }

    #[test]
    fn relay_passes_the_trace_echo_through() {
        let worker_response = HttpResponse {
            status: 200,
            headers: vec![(TRACE_HEADER.to_string(), "00000000deadbeef".to_string())],
            body: "{}\n".to_string(),
            chunks: None,
        };
        let relayed = relay(&worker_response);
        assert_eq!(
            relayed.extra_headers,
            vec![(TRACE_HEADER.to_string(), "00000000deadbeef".to_string())]
        );
    }

    #[test]
    fn routing_keys_use_the_model_cache_key() {
        let request = |path: &str, body: &str| Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        let key = routing_key(&request(
            "/v1/eval",
            r#"{"scheme": "olive-4bit", "batches": 2}"#,
        ))
        .unwrap();
        assert!(key.starts_with("family="), "cache key, not raw body: {key}");
        // The key ignores fields that don't feed preparation (the scheme
        // list), so scheme variants of one model share a worker cache.
        let other = routing_key(&request(
            "/v1/eval",
            r#"{"scheme": "uniform:4", "batches": 2}"#,
        ))
        .unwrap();
        assert_eq!(key, other, "same prepared model, same worker");

        let raw = routing_key(&request("/v1/eval", "not json")).unwrap();
        assert_eq!(raw, "not json", "undecodable bodies route by raw bytes");
    }

    #[test]
    fn resolve_worker_accepts_url_and_bare_forms() {
        let bare = resolve_worker("127.0.0.1:8080").unwrap();
        let url = resolve_worker("http://127.0.0.1:8080/").unwrap();
        assert_eq!(bare, url);
        assert!(resolve_worker("not an address").is_err());
    }
}
