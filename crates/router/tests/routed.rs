//! End-to-end routed topology over real sockets: a [`Router`] in front of
//! in-process `olive-serve` workers must be **invisible in the bytes** —
//! unary bodies and streamed chunk sequences identical to a single worker —
//! while surviving worker loss and honouring worker back-pressure.

use olive_api::JsonValue;
use olive_router::{Ring, Router, RouterConfig};
use olive_serve::client;
use olive_serve::{EvalRequest, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

const EVAL_BODY: &str =
    r#"{"schemes": ["fp32", "olive-4bit"], "batches": 2, "oversample": 2, "seed": 31}"#;
const GEN_BODY: &str =
    r#"{"scheme": "olive-4bit", "prompt_tokens": 5, "max_new_tokens": 4, "seed": 31}"#;

fn start_workers(n: usize) -> (Vec<Server>, Vec<String>) {
    let workers: Vec<Server> = (0..n)
        .map(|_| Server::start(ServeConfig::default()).expect("worker must start"))
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    (workers, addrs)
}

fn start_router(workers: Vec<String>) -> Router {
    Router::start(RouterConfig {
        workers,
        ..RouterConfig::default()
    })
    .expect("router must start")
}

#[test]
fn routed_bytes_match_a_single_worker_exactly() {
    // Reference: one worker asked directly.
    let reference = Server::start(ServeConfig::default()).expect("reference must start");
    let ref_eval = client::post_json(reference.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    let ref_gen = client::post_json(reference.local_addr(), "/v1/generate", GEN_BODY).unwrap();
    let ref_schemes = client::get(reference.local_addr(), "/v1/schemes").unwrap();
    assert_eq!(ref_eval.status, 200, "{}", ref_eval.body);
    assert_eq!(ref_gen.status, 200, "{}", ref_gen.body);
    reference.shutdown();

    let (workers, addrs) = start_workers(3);
    let router = start_router(addrs);

    // Unary proxying: status and body byte-identical.
    let routed_eval = client::post_json(router.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    assert_eq!(routed_eval.status, 200, "{}", routed_eval.body);
    assert_eq!(
        routed_eval.body, ref_eval.body,
        "routed /v1/eval bytes differ"
    );

    let routed_schemes = client::get(router.local_addr(), "/v1/schemes").unwrap();
    assert_eq!(routed_schemes.body, ref_schemes.body);

    // Streaming: the router must relay the worker's chunk sequence 1:1 —
    // same chunks in the same order, not just the same concatenation.
    let routed_gen = client::post_json(router.local_addr(), "/v1/generate", GEN_BODY).unwrap();
    assert_eq!(routed_gen.status, 200, "{}", routed_gen.body);
    assert_eq!(
        routed_gen.body, ref_gen.body,
        "routed /v1/generate bytes differ"
    );
    assert!(
        routed_gen.chunks.as_ref().is_some_and(|c| c.len() > 1),
        "routed generate must actually stream"
    );
    assert_eq!(routed_gen.chunks, ref_gen.chunks, "chunk boundaries differ");

    // Error parity: unknown paths and bad bodies answer exactly like a
    // worker would (the front door doesn't invent its own error shapes).
    let routed_404 = client::get(router.local_addr(), "/nope").unwrap();
    let routed_400 = client::post_json(router.local_addr(), "/v1/eval", "{nope").unwrap();
    assert_eq!(routed_404.status, 404);
    assert_eq!(routed_400.status, 400);

    // Repeating the same request is stable through the ring (affinity).
    let again = client::post_json(router.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    assert_eq!(again.body, routed_eval.body);

    router.shutdown();
    for worker in workers {
        worker.shutdown();
    }
}

#[test]
fn router_healthz_aggregates_and_pins_key_order() {
    let (workers, addrs) = start_workers(3);
    let router = start_router(addrs);
    let _ = client::post_json(router.local_addr(), "/v1/eval", EVAL_BODY).unwrap();

    let response = client::get(router.local_addr(), "/healthz").unwrap();
    assert_eq!(response.status, 200);
    let v = JsonValue::parse(&response.body).expect("router healthz must be JSON");
    assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(v.get("workers").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(
        v.get("workers_healthy").and_then(JsonValue::as_u64),
        Some(3)
    );
    assert_eq!(
        v.get("requests_served").and_then(JsonValue::as_u64),
        Some(1)
    );
    let upstream = v.get("upstream").expect("router healthz must aggregate");
    assert!(
        upstream
            .get("requests_served")
            .and_then(JsonValue::as_u64)
            .is_some_and(|served| served >= 1),
        "upstream gauge must sum worker counters"
    );

    // The rendered key order is part of the interface (mirrors the worker
    // healthz order pin in olive-serve): scrape positions in the raw body.
    let expected = [
        "status",
        "workers",
        "workers_healthy",
        "requests_served",
        "requests_retried",
        "requests_failed_over",
        "requests_rejected",
        "connections_accepted",
        "upstream",
    ];
    let mut last = 0usize;
    for key in expected {
        let needle = format!("\"{key}\"");
        let at = response.body[last..]
            .find(&needle)
            .unwrap_or_else(|| panic!("healthz key {key} missing or out of order"));
        last += at + needle.len();
    }

    router.shutdown();
    for worker in workers {
        worker.shutdown();
    }
}

#[test]
fn killing_the_owning_worker_fails_over_byte_identically() {
    let (mut workers, addrs) = start_workers(3);
    let router = start_router(addrs.clone());

    let routed = client::post_json(router.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    assert_eq!(routed.status, 200, "{}", routed.body);

    // The router and this test build the same ring over the same strings,
    // so the victim is *provably* the worker that served the request above.
    let request = EvalRequest::decode(&JsonValue::parse(EVAL_BODY).unwrap()).unwrap();
    let ring = Ring::new(&addrs);
    let owner = ring.owner(&request.prepared_key()).expect("non-empty ring");
    workers.remove(owner).shutdown();

    // Failover: the request must still answer 200 with identical bytes from
    // a surviving worker (the determinism contract makes any worker
    // equivalent), without the client seeing the dead one.
    let after = client::post_json(router.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(after.body, routed.body, "failover changed the served bytes");

    // Streaming fails over too (no bytes had been written when the dead
    // worker refused the connection).
    let gen = client::post_json(router.local_addr(), "/v1/generate", GEN_BODY).unwrap();
    assert_eq!(gen.status, 200, "{}", gen.body);

    // The loss is visible in the aggregated healthz.
    let health = client::get(router.local_addr(), "/healthz").unwrap();
    let v = JsonValue::parse(&health.body).unwrap();
    assert_eq!(v.get("workers").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(
        v.get("workers_healthy").and_then(JsonValue::as_u64),
        Some(2)
    );
    assert_eq!(
        v.get("status").and_then(JsonValue::as_str),
        Some("degraded")
    );
    assert!(
        v.get("requests_failed_over")
            .and_then(JsonValue::as_u64)
            .is_some_and(|failed_over| failed_over >= 1),
        "the fail-over must be visible in the router's own counters"
    );

    router.shutdown();
    for worker in workers {
        worker.shutdown();
    }
}

#[test]
fn router_metrics_break_down_routing_per_worker() {
    let (workers, addrs) = start_workers(2);
    let router = start_router(addrs);

    let eval = client::post_json(router.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    assert_eq!(eval.status, 200, "{}", eval.body);
    // The router stamps a trace id and echoes it to the client.
    let trace_id = eval
        .header("x-olive-trace")
        .expect("routed responses must carry the trace header")
        .to_string();
    assert_eq!(trace_id.len(), 16, "16-hex-digit id: {trace_id}");

    let metrics = client::get(router.local_addr(), "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(
        metrics
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "Prometheus exposition is text/plain"
    );
    // The fleet total and the per-worker breakdown must agree.
    let value_of = |line: &str| {
        line.rsplit(' ')
            .next()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("unparseable sample line: {line}"))
    };
    let served: u64 = metrics
        .body
        .lines()
        .filter(|l| l.starts_with("olive_router_requests_served_total "))
        .map(value_of)
        .sum();
    let per_worker: u64 = metrics
        .body
        .lines()
        .filter(|l| l.starts_with("olive_router_worker_requests_total{"))
        .map(value_of)
        .sum();
    assert_eq!(served, 1, "one request served:\n{}", metrics.body);
    assert_eq!(
        per_worker, served,
        "per-worker counts must sum to the total"
    );

    // The finished request is visible in the trace ring, under the id the
    // client saw, with the canonical stage sequence.
    let traces = client::get(router.local_addr(), "/debug/trace?n=8").unwrap();
    assert_eq!(traces.status, 200);
    assert!(
        traces.body.contains(&trace_id),
        "trace {trace_id} missing from {}",
        traces.body
    );
    assert!(
        traces.body.contains("\"stage\":\"accepted\""),
        "{}",
        traces.body
    );
    assert!(
        traces.body.contains("\"stage\":\"done\""),
        "{}",
        traces.body
    );

    router.shutdown();
    for worker in workers {
        worker.shutdown();
    }
}

/// A scripted one-worker stub: answers `/healthz` 200, and its first POST
/// with `503 + Retry-After` before serving the real body — the shape of a
/// worker shedding load under back-pressure.
fn start_backpressure_stub(body: &'static str) -> (SocketAddr, Arc<AtomicU32>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("stub must bind");
    let addr = listener.local_addr().expect("stub addr");
    let posts = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&posts);
    std::thread::spawn(move || {
        while let Ok((stream, _)) = listener.accept() {
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            loop {
                // Minimal request parse: request line, headers, CL body.
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                let is_post = line.starts_with("POST");
                let mut content_length = 0usize;
                loop {
                    let mut header = String::new();
                    if reader.read_line(&mut header).unwrap_or(0) == 0 {
                        return;
                    }
                    let header = header.trim();
                    if header.is_empty() {
                        break;
                    }
                    if let Some(v) = header
                        .to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::trim)
                        .and_then(|v| v.parse::<usize>().ok())
                    {
                        content_length = v;
                    }
                }
                let mut discard = vec![0u8; content_length];
                std::io::Read::read_exact(&mut reader, &mut discard).ok();
                let response = if !is_post {
                    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 15\r\n\r\n{\"status\":\"ok\"}"
                        .to_string()
                } else if counter.fetch_add(1, Ordering::SeqCst) == 0 {
                    "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n"
                        .to_string()
                } else {
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                };
                if writer.write_all(response.as_bytes()).is_err() {
                    break;
                }
            }
        }
    });
    (addr, posts)
}

#[test]
fn a_503_is_retried_on_the_same_worker_honouring_retry_after() {
    let (addr, posts) = start_backpressure_stub("{\"ok\": true}");
    let router = Router::start(RouterConfig {
        workers: vec![addr.to_string()],
        // Cap the advertised 1-second Retry-After so the test stays fast;
        // the cap path is exactly what production uses against a hostile
        // or clock-skewed worker.
        retry_after_cap: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .expect("router must start");

    let response = client::post_json(router.local_addr(), "/v1/eval", EVAL_BODY).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(response.body, "{\"ok\": true}");
    assert_eq!(
        posts.load(Ordering::SeqCst),
        2,
        "the 503 must be retried on the same worker exactly once"
    );

    let health = client::get(router.local_addr(), "/healthz").unwrap();
    let v = JsonValue::parse(&health.body).unwrap();
    assert!(
        v.get("requests_retried")
            .and_then(JsonValue::as_u64)
            .is_some_and(|retried| retried >= 1),
        "the retry must be visible in the router's own counters"
    );

    router.shutdown();
}
