//! Property-based tests of the OliVe data types, run on the in-repo
//! deterministic property harness (`olive-harness`) — this workspace builds
//! offline, so no proptest.

use olive_dtypes::abfloat::{AbfloatCode, AbfloatFormat};
use olive_dtypes::{ExpInt, Flint4, Int4, Int8, OUTLIER_IDENTIFIER_4BIT, OUTLIER_IDENTIFIER_8BIT};
use olive_harness::{check, gen, prop_assert, prop_assert_eq, prop_assert_ne};

/// int4 quantization never emits the outlier identifier and never strays
/// more than half a step (or the saturation bound) from its input.
#[test]
fn int4_quantize_is_sound() {
    check::check(
        "int4_quantize_is_sound",
        gen::f32_in(-1000.0, 1000.0),
        |&x| {
            let q = Int4::quantize(x);
            prop_assert_ne!(q.code(), OUTLIER_IDENTIFIER_4BIT);
            let v = q.value() as f32;
            if x.abs() <= 7.0 {
                prop_assert!((v - x).abs() <= 0.5 + 1e-4);
            } else {
                prop_assert_eq!(v, 7.0f32.copysign(x));
            }
            Ok(())
        },
    );
}

/// int8 quantization never emits the identifier; round trip through the
/// code is exact.
#[test]
fn int8_round_trip() {
    check::check("int8_round_trip", gen::i32_in(-127, 127), |&v| {
        let q = Int8::from_value(v);
        prop_assert_ne!(q.code(), OUTLIER_IDENTIFIER_8BIT);
        prop_assert_eq!(Int8::decode(q.code()).unwrap().value(), v);
        let (h, l) = q.split_high_low();
        prop_assert_eq!(h.value() + l.value(), v as i64);
        Ok(())
    });
}

/// flint4 quantization picks a representable value and never the
/// identifier; the chosen value is the nearest grid point.
#[test]
fn flint4_quantize_is_nearest() {
    check::check(
        "flint4_quantize_is_nearest",
        gen::f32_in(-40.0, 40.0),
        |&x| {
            let q = Flint4::quantize(x);
            prop_assert_ne!(q.code(), OUTLIER_IDENTIFIER_4BIT);
            let grid = Flint4::all_values();
            let v = q.value();
            prop_assert!(grid.contains(&v));
            let best = grid
                .iter()
                .map(|&g| (g as f32 - x.clamp(-16.0, 16.0)).abs())
                .fold(f32::INFINITY, f32::min);
            prop_assert!((v as f32 - x.clamp(-16.0, 16.0)).abs() <= best + 0.5 + 1e-4);
            Ok(())
        },
    );
}

/// The abfloat encoder never produces the reserved codes, and its decode
/// stays within the representable range.
#[test]
fn abfloat_encode_in_range() {
    let input =
        |rng: &mut olive_harness::Rng| (gen::f32_in(0.01, 100_000.0)(rng), gen::i32_in(0, 5)(rng));
    check::check("abfloat_encode_in_range", input, |&(x, bias)| {
        for format in AbfloatFormat::four_bit_formats() {
            let c = AbfloatCode::encode(x, bias, format);
            // Reserved codes 0…0 and 1000…0 decode to zero; they must not appear.
            prop_assert_ne!(c.magnitude(bias), 0, "format {:?} x {}", format, x);
            prop_assert!(c.magnitude(bias) <= format.max_value(bias));
            prop_assert!(c.magnitude(bias) >= format.min_nonzero_value(bias));
            // Sign symmetric.
            let n = AbfloatCode::encode(-x, bias, format);
            prop_assert_eq!(n.value(bias), -c.value(bias));
        }
        Ok(())
    });
}

/// Abfloat rounding error is bounded by the local grid spacing (one
/// exponent step) inside the representable range.
#[test]
fn abfloat_error_is_bounded() {
    check::check("abfloat_error_is_bounded", gen::f32_in(12.0, 96.0), |&x| {
        let bias = 2;
        let c = AbfloatCode::encode(x, bias, AbfloatFormat::E2M1);
        let err = (c.magnitude(bias) as f32 - x).abs();
        // Largest spacing in {12,16,24,32,48,64,96} is 32.
        prop_assert!(err <= 16.0 + 1e-3, "x = {}, err = {}", x, err);
        Ok(())
    });
}

/// Exponent-integer multiplication equals plain integer multiplication of
/// the represented values.
#[test]
fn expint_mul_matches_values() {
    let input = |rng: &mut olive_harness::Rng| {
        (
            gen::u32_below(8)(rng),
            gen::i64_in(-128, 127)(rng),
            gen::u32_below(8)(rng),
            gen::i64_in(-128, 127)(rng),
        )
    };
    check::check(
        "expint_mul_matches_values",
        input,
        |&(a_e, a_i, b_e, b_i)| {
            let a = ExpInt::new(a_e, a_i);
            let b = ExpInt::new(b_e, b_i);
            prop_assert_eq!(a.mul(b).value(), a.value() * b.value());
            Ok(())
        },
    );
}
