//! Exponent–integer pairs: the unified post-decode representation.
//!
//! Both normal values and abfloat outliers are decoded by the OVP decoder into
//! an *exponent-integer pair* `<a, b>` representing `b << a` (paper Sec. 4.2 and
//! Sec. 4.4). The MAC unit multiplies two pairs by multiplying the integers and
//! adding the exponents, then shifts into a 32-bit accumulator:
//!
//! ```text
//! <a, b> × <c, d> = <a + c, b × d> = (b × d) << (a + c)
//! ```
//!
//! We model the accumulator with `i64` but expose
//! [`ExpInt::fits_i32_accumulator`] so tests can check the paper's claim that
//! clipping outliers at 2¹⁵ keeps every product within `int32`.

/// An exponent-integer pair `value = integer << exponent`.
///
/// The exponent is always non-negative: the hardware decoder adds the abfloat
/// bias back before handing the pair to the MAC array.
///
/// # Examples
///
/// ```
/// use olive_dtypes::ExpInt;
///
/// let a = ExpInt::new(4, 3);   // 3 << 4 = 48
/// let b = ExpInt::new(0, -2);  // -2
/// assert_eq!(a.value(), 48);
/// assert_eq!(a.mul(b).value(), -96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExpInt {
    exponent: u32,
    integer: i64,
}

impl ExpInt {
    /// Creates a pair from a non-negative exponent and a signed integer.
    pub fn new(exponent: u32, integer: i64) -> Self {
        ExpInt { exponent, integer }
    }

    /// The zero pair.
    pub fn zero() -> Self {
        ExpInt {
            exponent: 0,
            integer: 0,
        }
    }

    /// The exponent (shift amount).
    pub fn exponent(self) -> u32 {
        self.exponent
    }

    /// The integer (pre-shift) part.
    pub fn integer(self) -> i64 {
        self.integer
    }

    /// The represented value `integer << exponent`.
    pub fn value(self) -> i64 {
        self.integer << self.exponent
    }

    /// Multiplies two pairs the way the OliVe MAC unit does: integers multiply,
    /// exponents add (paper Sec. 4.4).
    // Inherent so callers don't need `std::ops::Mul` in scope; `*` also works.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: ExpInt) -> ExpInt {
        ExpInt {
            exponent: self.exponent + other.exponent,
            integer: self.integer * other.integer,
        }
    }

    /// Returns `true` if the *product value* fits the paper's 32-bit
    /// accumulator without overflow.
    pub fn fits_i32_accumulator(self) -> bool {
        let v = self.value();
        v >= i32::MIN as i64 && v <= i32::MAX as i64
    }

    /// Returns `true` if this pair represents zero.
    pub fn is_zero(self) -> bool {
        self.integer == 0
    }
}

impl std::ops::Mul for ExpInt {
    type Output = ExpInt;

    fn mul(self, other: ExpInt) -> ExpInt {
        ExpInt::mul(self, other)
    }
}

impl std::fmt::Display for ExpInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "<{}, {}> (= {})",
            self.exponent,
            self.integer,
            self.value()
        )
    }
}

/// Computes a dot product of exponent-integer pairs with an explicit
/// accumulator, mirroring the FEDP/8EDP/16EDP units of the tensor-core
/// integration (paper Fig. 6a).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn dot(a: &[ExpInt], b: &[ExpInt]) -> i64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x.mul(y).value()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_shifted_integer() {
        assert_eq!(ExpInt::new(0, 5).value(), 5);
        assert_eq!(ExpInt::new(3, 5).value(), 40);
        assert_eq!(ExpInt::new(2, -3).value(), -12);
        assert_eq!(ExpInt::zero().value(), 0);
    }

    #[test]
    fn mul_matches_paper_identity() {
        // <a,b> * <c,d> = (b*d) << (a+c)
        let x = ExpInt::new(4, 3);
        let y = ExpInt::new(2, -5);
        let p = x.mul(y);
        assert_eq!(p.exponent(), 6);
        assert_eq!(p.integer(), -15);
        assert_eq!(p.value(), x.value() * y.value());
    }

    #[test]
    fn mul_is_commutative() {
        let x = ExpInt::new(1, 7);
        let y = ExpInt::new(5, -2);
        assert_eq!(x.mul(y), y.mul(x));
    }

    #[test]
    fn product_of_clipped_outliers_fits_i32() {
        // Paper Sec. 4.5: outliers are clipped at 2^15, so the extreme product
        // 2^15 * 2^15 < 2^31 - 1 fits the int32 accumulator.
        let max_outlier = ExpInt::new(15, 1);
        assert!(max_outlier.mul(max_outlier).fits_i32_accumulator());
    }

    #[test]
    fn dot_product_matches_scalar_math() {
        let a = vec![ExpInt::new(0, 1), ExpInt::new(1, 2), ExpInt::new(2, 3)];
        let b = vec![ExpInt::new(0, 4), ExpInt::new(0, -5), ExpInt::new(1, 6)];
        // values: a = [1, 4, 12], b = [4, -5, 12] -> 4 - 20 + 144 = 128
        assert_eq!(dot(&a, &b), 128);
    }

    #[test]
    fn zero_detection() {
        assert!(ExpInt::new(7, 0).is_zero());
        assert!(!ExpInt::new(0, 1).is_zero());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ExpInt::new(1, 2).to_string().is_empty());
    }
}
