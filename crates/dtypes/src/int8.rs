//! The OVP `int8` normal-value type.
//!
//! A signed 8-bit integer whose code `1000_0000₂` (-128) is reserved as the
//! outlier identifier, so the representable range is `[-127, 127]`
//! (paper Sec. 3.2, "the 8-bit normal value also needs to eliminate one
//! number").

use crate::expint::ExpInt;
use crate::identifier::OUTLIER_IDENTIFIER_8BIT;

/// An 8-bit OVP integer code.
///
/// # Examples
///
/// ```
/// use olive_dtypes::Int8;
///
/// assert_eq!(Int8::quantize(100.4).value(), 100);
/// assert_eq!(Int8::quantize(-1e9).value(), -127); // saturates, never -128
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Int8(u8);

impl Int8 {
    /// Largest representable magnitude.
    pub const MAX: i32 = 127;
    /// Smallest representable value (the identifier `-128` is excluded).
    pub const MIN: i32 = -127;

    /// Creates an `Int8` from an integer value, saturating to `[-127, 127]`.
    pub fn from_value(v: i32) -> Self {
        let clamped = v.clamp(Self::MIN, Self::MAX);
        Int8(clamped as i8 as u8)
    }

    /// Quantizes a real value (already divided by the tensor scale) to the
    /// nearest representable integer, saturating at ±127.
    pub fn quantize(x: f32) -> Self {
        if x.is_nan() {
            return Int8(0);
        }
        Self::from_value(x.round().clamp(-1e9, 1e9) as i32)
    }

    /// Reconstructs an `Int8` from a raw code.
    ///
    /// Returns `None` if the code is the outlier identifier.
    pub fn decode(code: u8) -> Option<Self> {
        if code == OUTLIER_IDENTIFIER_8BIT {
            None
        } else {
            Some(Int8(code))
        }
    }

    /// The raw 8-bit code.
    pub fn code(self) -> u8 {
        self.0
    }

    /// The signed integer value of this code.
    pub fn value(self) -> i32 {
        self.0 as i8 as i32
    }

    /// The value as an exponent-integer pair (exponent 0).
    pub fn to_expint(self) -> ExpInt {
        ExpInt::new(0, self.value() as i64)
    }

    /// Splits the 8-bit value into two exponent-integer pairs for computation
    /// on four 4-bit PEs: `x = (h << 4) + l` (paper Sec. 4.5).
    ///
    /// `h` is the arithmetic high part and `l ∈ [0, 15]` the low nibble, so the
    /// identity `value = h * 16 + l` always holds.
    pub fn split_high_low(self) -> (ExpInt, ExpInt) {
        let v = self.value();
        let l = v & 0xF;
        let h = (v - l) >> 4;
        (ExpInt::new(4, h as i64), ExpInt::new(0, l as i64))
    }

    /// All representable values in ascending order.
    pub fn all_values() -> impl Iterator<Item = i32> {
        Self::MIN..=Self::MAX
    }
}

impl std::fmt::Display for Int8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_excludes_minus_128() {
        let values: Vec<i32> = Int8::all_values().collect();
        assert_eq!(values.first(), Some(&-127));
        assert_eq!(values.last(), Some(&127));
        assert_eq!(values.len(), 255);
    }

    #[test]
    fn quantize_never_produces_identifier() {
        for x in [-1e9f32, -128.4, -127.6, 0.0, 127.6, 1e9] {
            assert_ne!(Int8::quantize(x).code(), OUTLIER_IDENTIFIER_8BIT);
        }
    }

    #[test]
    fn decode_rejects_identifier() {
        assert!(Int8::decode(OUTLIER_IDENTIFIER_8BIT).is_none());
        assert_eq!(Int8::decode(0x7F).unwrap().value(), 127);
        assert_eq!(Int8::decode(0xFF).unwrap().value(), -1);
    }

    #[test]
    fn code_round_trip() {
        for v in Int8::all_values() {
            let q = Int8::from_value(v);
            assert_eq!(Int8::decode(q.code()).unwrap().value(), v);
        }
    }

    #[test]
    fn split_high_low_reconstructs_value() {
        for v in Int8::all_values() {
            let (h, l) = Int8::from_value(v).split_high_low();
            assert_eq!(h.value() + l.value(), v as i64, "v = {}", v);
        }
    }

    #[test]
    fn split_multiplication_matches_direct_product() {
        // x * y == (hx + lx) * (hy + ly) expanded over four PEs (paper Sec. 4.5).
        for &x in &[-127, -100, -16, -1, 0, 1, 5, 16, 99, 127] {
            for &y in &[-127, -37, 0, 1, 64, 127] {
                let (hx, lx) = Int8::from_value(x).split_high_low();
                let (hy, ly) = Int8::from_value(y).split_high_low();
                let prod = hx.mul(hy).value()
                    + hx.mul(ly).value()
                    + lx.mul(hy).value()
                    + lx.mul(ly).value();
                assert_eq!(prod, (x * y) as i64, "{} * {}", x, y);
            }
        }
    }

    #[test]
    fn quantize_handles_nan() {
        assert_eq!(Int8::quantize(f32::NAN).value(), 0);
    }
}
