//! The adaptive biased float (`abfloat`) outlier data type (paper Sec. 3.3).
//!
//! Outliers have a wide dynamic range, so OliVe quantizes them with a small
//! float whose encoded value is interpreted as *fixed point with an exponent*
//! (Eq. 2 of the paper):
//!
//! ```text
//! value = sign × ((1 << mb) + mantissa) << (exponent + bias)
//! ```
//!
//! The **adaptive bias** shifts the whole representable range upward so it
//! starts just above the normal-value range: e.g. with `bias = 2` the 4-bit
//! E2M1 values become `{12, 16, 24, 32, 48, 64, 96}`, complementary to `int4`'s
//! `[-7, 7]` (Tbl. 4 shows the `bias = 0` values `{0, 3, 4, 6, 8, 12, 16, 24}`).
//!
//! Two code words are *never produced* by the outlier encoder: `0…0` (+0) and
//! the outlier identifier `1000…0` (-0), so an outlier code can always be
//! distinguished from a victim marker (paper Sec. 3.3, last paragraph).

use crate::expint::ExpInt;

/// The exponent/mantissa split of an abfloat code.
///
/// The paper evaluates all four 4-bit configurations (Fig. 5) and selects
/// **E2M1** for 4-bit outliers and **E4M3** for 8-bit outliers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbfloatFormat {
    /// 4-bit: 0 exponent bits, 3 mantissa bits.
    E0M3,
    /// 4-bit: 1 exponent bit, 2 mantissa bits.
    E1M2,
    /// 4-bit: 2 exponent bits, 1 mantissa bit (the paper's choice).
    E2M1,
    /// 4-bit: 3 exponent bits, 0 mantissa bits.
    E3M0,
    /// 8-bit: 4 exponent bits, 3 mantissa bits (the paper's 8-bit choice).
    E4M3,
}

impl AbfloatFormat {
    /// Number of exponent bits.
    pub fn exponent_bits(self) -> u32 {
        match self {
            AbfloatFormat::E0M3 => 0,
            AbfloatFormat::E1M2 => 1,
            AbfloatFormat::E2M1 => 2,
            AbfloatFormat::E3M0 => 3,
            AbfloatFormat::E4M3 => 4,
        }
    }

    /// Number of mantissa bits.
    pub fn mantissa_bits(self) -> u32 {
        match self {
            AbfloatFormat::E0M3 => 3,
            AbfloatFormat::E1M2 => 2,
            AbfloatFormat::E2M1 => 1,
            AbfloatFormat::E3M0 => 0,
            AbfloatFormat::E4M3 => 3,
        }
    }

    /// Total bit width including the sign bit.
    pub fn bits(self) -> u32 {
        1 + self.exponent_bits() + self.mantissa_bits()
    }

    /// Largest exponent-field value.
    pub fn max_exponent_field(self) -> u32 {
        (1 << self.exponent_bits()) - 1
    }

    /// Largest representable magnitude for a given bias.
    pub fn max_value(self, bias: i32) -> i64 {
        let mb = self.mantissa_bits();
        let max_int = (1i64 << mb) | ((1i64 << mb) - 1);
        shift(max_int, self.max_exponent_field() as i32 + bias)
    }

    /// Smallest non-zero representable magnitude for a given bias.
    ///
    /// Note that the all-zero unsigned code decodes to 0, so the smallest
    /// code the encoder may produce is `0…01`, whose integer part is
    /// `(1 << mb) + 1`.
    pub fn min_nonzero_value(self, bias: i32) -> i64 {
        let mb = self.mantissa_bits();
        if mb == 0 {
            // E3M0: code 001 has exponent field 1, integer 1.
            shift(1, 1 + bias)
        } else {
            shift((1i64 << mb) + 1, bias)
        }
    }

    /// Every positive representable magnitude (ascending, no duplicates) for a
    /// given bias. Used by tests and the Fig. 5 rounding-error analysis.
    pub fn positive_values(self, bias: i32) -> Vec<i64> {
        let mut vals = Vec::new();
        for code in 1u8..(1 << (self.bits() - 1)) {
            let c = AbfloatCode::from_bits(self, code);
            vals.push(c.magnitude(bias));
        }
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// All 4-bit formats in the order used by Fig. 5.
    pub fn four_bit_formats() -> [AbfloatFormat; 4] {
        [
            AbfloatFormat::E0M3,
            AbfloatFormat::E1M2,
            AbfloatFormat::E2M1,
            AbfloatFormat::E3M0,
        ]
    }
}

impl std::fmt::Display for AbfloatFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AbfloatFormat::E0M3 => "E0M3",
            AbfloatFormat::E1M2 => "E1M2",
            AbfloatFormat::E2M1 => "E2M1",
            AbfloatFormat::E3M0 => "E3M0",
            AbfloatFormat::E4M3 => "E4M3",
        };
        f.write_str(s)
    }
}

fn shift(v: i64, e: i32) -> i64 {
    if e >= 0 {
        v << e
    } else {
        v >> (-e)
    }
}

/// A quantized abfloat code word.
///
/// The raw bit layout is `sign | exponent-field | mantissa`, identical to the
/// hardware decoder's input (paper Fig. 7). The bias is *not* stored in the
/// code — it is a per-tensor constant supplied at decode time, which is exactly
/// what makes the bias "adaptive" at zero storage cost.
///
/// # Examples
///
/// ```
/// use olive_dtypes::{AbfloatCode, AbfloatFormat};
///
/// // Paper Sec. 4.2 example: code 0101 with bias 2 decodes to 48.
/// let c = AbfloatCode::from_bits(AbfloatFormat::E2M1, 0b0101);
/// assert_eq!(c.value(2), 48);
///
/// // Encoding picks the nearest representable value.
/// let q = AbfloatCode::encode(50.0, 2, AbfloatFormat::E2M1);
/// assert_eq!(q.value(2), 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbfloatCode {
    format: AbfloatFormat,
    bits: u8,
}

impl AbfloatCode {
    /// Wraps raw code bits (low `format.bits()` bits are significant).
    pub fn from_bits(format: AbfloatFormat, bits: u8) -> Self {
        let mask = ((1u16 << format.bits()) - 1) as u8;
        AbfloatCode {
            format,
            bits: bits & mask,
        }
    }

    /// Encodes a scaled real value as abfloat (Algorithm 2 of the paper),
    /// generalised to any exponent/mantissa split.
    ///
    /// The input is the value on the integer grid (i.e. already divided by the
    /// tensor scale). Values below the representable range round up to the
    /// smallest non-zero code (codes `0…0` and `1000…0` are disabled); values
    /// above the range saturate at the maximum code.
    pub fn encode(element: f32, bias: i32, format: AbfloatFormat) -> Self {
        let sign_neg = element < 0.0;
        let mag = element.abs() as f64;
        let mb = format.mantissa_bits() as i32;

        let min_val = format.min_nonzero_value(bias) as f64;
        let max_val = format.max_value(bias) as f64;

        if !mag.is_finite() || mag >= max_val {
            return Self::from_parts(format, sign_neg, format.max_exponent_field(), u32::MAX);
        }
        if mag <= 0.0 {
            // The outlier encoder is never given zeros, but keep it total.
            return Self::from_parts(format, sign_neg, 0, 1);
        }

        // Algorithm 2: exp = floor(log2(|e|)) - mb ; base_int = round(e / 2^exp)
        let mut exp = mag.log2().floor() as i32 - mb;
        let mut base_int = (mag / 2f64.powi(exp)).round() as i64;
        // Rounding may push base_int to 2^(mb+1); renormalise.
        if base_int >= 1 << (mb + 1) {
            exp += 1;
            base_int >>= 1;
        }

        // Encoded exponent field after removing the bias.
        let stored_exp = exp - bias;
        if stored_exp < 0 || mag < min_val {
            // Below the outlier range: clamp to the smallest legal code.
            return Self::from_parts(format, sign_neg, if mb == 0 { 1 } else { 0 }, 1);
        }
        if stored_exp > format.max_exponent_field() as i32 {
            return Self::from_parts(format, sign_neg, format.max_exponent_field(), u32::MAX);
        }

        let mantissa = (base_int & ((1i64 << mb) - 1)) as u32;
        let mut code = Self::from_parts(format, sign_neg, stored_exp as u32, mantissa);
        // Codes 0…0 / 1000…0 are reserved (they decode to ±0); bump to the
        // smallest legal code instead.
        if code.unsigned_bits() == 0 {
            code = Self::from_parts(format, sign_neg, if mb == 0 { 1 } else { 0 }, 1);
        }
        code
    }

    fn from_parts(format: AbfloatFormat, negative: bool, exp_field: u32, mantissa: u32) -> Self {
        let mb = format.mantissa_bits();
        let eb = format.exponent_bits();
        let exp_field = exp_field.min((1 << eb) - 1);
        let mantissa = if mb == 0 {
            0
        } else {
            mantissa.min((1 << mb) - 1)
        };
        let bits = ((negative as u32) << (eb + mb)) | (exp_field << mb) | mantissa;
        AbfloatCode {
            format,
            bits: bits as u8,
        }
    }

    /// The raw code bits.
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// The code's format.
    pub fn format(self) -> AbfloatFormat {
        self.format
    }

    /// The unsigned (exponent+mantissa) part of the code.
    fn unsigned_bits(self) -> u8 {
        let mask = ((1u16 << (self.format.bits() - 1)) - 1) as u8;
        self.bits & mask
    }

    /// `true` if the sign bit is set.
    pub fn is_negative(self) -> bool {
        self.bits >> (self.format.bits() - 1) & 1 == 1
    }

    /// The exponent field (without bias).
    pub fn exponent_field(self) -> u32 {
        (self.unsigned_bits() >> self.format.mantissa_bits()) as u32
    }

    /// The mantissa field.
    pub fn mantissa_field(self) -> u32 {
        let mb = self.format.mantissa_bits();
        (self.unsigned_bits() & (((1u16 << mb) - 1) as u8)) as u32
    }

    /// The decoded magnitude (absolute value) on the integer grid.
    pub fn magnitude(self, bias: i32) -> i64 {
        if self.unsigned_bits() == 0 {
            return 0;
        }
        let mb = self.format.mantissa_bits();
        let integer = (1i64 << mb) | self.mantissa_field() as i64;
        shift(integer, self.exponent_field() as i32 + bias)
    }

    /// The decoded signed value on the integer grid.
    pub fn value(self, bias: i32) -> i64 {
        let m = self.magnitude(bias);
        if self.is_negative() {
            -m
        } else {
            m
        }
    }

    /// Decodes into the exponent-integer pair the hardware outlier decoder
    /// emits (paper Fig. 7): `exponent = bias + exponent-field`,
    /// `integer = (1·mantissa)₂` with the sign applied to the integer.
    pub fn to_expint(self, bias: i32) -> ExpInt {
        if self.unsigned_bits() == 0 {
            return ExpInt::zero();
        }
        let mb = self.format.mantissa_bits();
        let integer = (1i64 << mb) | self.mantissa_field() as i64;
        let exponent = (self.exponent_field() as i32 + bias).max(0) as u32;
        ExpInt::new(
            exponent,
            if self.is_negative() {
                -integer
            } else {
                integer
            },
        )
    }

    /// Absolute rounding error of encoding `x` (on the integer grid).
    pub fn rounding_error(x: f32, bias: i32, format: AbfloatFormat) -> f64 {
        let q = Self::encode(x, bias, format);
        (q.value(bias) as f64 - x as f64).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2m1_bias0_values_match_table4() {
        // Table 4 lists the unsigned E2M1 values with bias = 0.
        let vals = AbfloatFormat::E2M1.positive_values(0);
        assert_eq!(vals, vec![3, 4, 6, 8, 12, 16, 24]);
    }

    #[test]
    fn e2m1_bias2_range_is_complementary_to_int4() {
        // Paper Sec. 3.3: bias = 2 extends the range to {12, ..., 96}.
        let vals = AbfloatFormat::E2M1.positive_values(2);
        assert_eq!(vals.first(), Some(&12));
        assert_eq!(vals.last(), Some(&96));
    }

    #[test]
    fn e2m1_bias3_range_for_flint4() {
        // Paper Sec. 3.3: bias = 3 extends the range to {24, ..., 192}.
        let vals = AbfloatFormat::E2M1.positive_values(3);
        assert_eq!(vals.first(), Some(&24));
        assert_eq!(vals.last(), Some(&192));
    }

    #[test]
    fn paper_decode_example_0101_bias2_is_48() {
        // Sec. 4.2: "when the bias is 2, a number 0101₂ is 48₁₀".
        let c = AbfloatCode::from_bits(AbfloatFormat::E2M1, 0b0101);
        assert_eq!(c.value(2), 48);
        let p = c.to_expint(2);
        assert_eq!(p.exponent(), 4);
        assert_eq!(p.integer(), 3);
    }

    #[test]
    fn encoder_never_emits_reserved_codes() {
        for i in 1..2000 {
            let x = i as f32 * 0.17;
            let c = AbfloatCode::encode(x, 2, AbfloatFormat::E2M1);
            assert_ne!(c.unsigned_bits(), 0, "x = {}", x);
            let cn = AbfloatCode::encode(-x, 2, AbfloatFormat::E2M1);
            assert_ne!(cn.unsigned_bits(), 0, "x = {}", -x);
        }
    }

    #[test]
    fn encode_is_nearest_or_saturating() {
        let format = AbfloatFormat::E2M1;
        let bias = 2;
        let grid = format.positive_values(bias);
        for i in 12..300 {
            let x = i as f32;
            let q = AbfloatCode::encode(x, bias, format).magnitude(bias);
            // The best representable value:
            let best = grid
                .iter()
                .min_by(|&&a, &&b| {
                    ((a as f64 - x as f64).abs())
                        .partial_cmp(&((b as f64 - x as f64).abs()))
                        .unwrap()
                })
                .copied()
                .unwrap();
            let err_q = (q as f64 - x as f64).abs();
            let err_best = (best as f64 - x as f64).abs();
            // Algorithm 2 is a hardware-friendly rounding, allow it to be at
            // most one grid position worse than the oracle nearest value.
            assert!(
                err_q <= 2.0 * err_best + 8.0,
                "x = {}, algo = {}, best = {}",
                x,
                q,
                best
            );
        }
    }

    #[test]
    fn values_below_range_clamp_to_min_nonzero() {
        let c = AbfloatCode::encode(1.0, 2, AbfloatFormat::E2M1);
        assert_eq!(c.magnitude(2), AbfloatFormat::E2M1.min_nonzero_value(2));
    }

    #[test]
    fn values_above_range_saturate_to_max() {
        let c = AbfloatCode::encode(1e9, 2, AbfloatFormat::E2M1);
        assert_eq!(c.magnitude(2), AbfloatFormat::E2M1.max_value(2));
    }

    #[test]
    fn sign_is_preserved() {
        let c = AbfloatCode::encode(-50.0, 2, AbfloatFormat::E2M1);
        assert!(c.is_negative());
        assert_eq!(c.value(2), -48);
    }

    #[test]
    fn e4m3_covers_int8_complementary_range() {
        // 8-bit outliers with bias 4 start above the int8 range (127).
        let vals = AbfloatFormat::E4M3.positive_values(4);
        assert!(
            *vals.first().unwrap() >= 128,
            "min = {}",
            vals.first().unwrap()
        );
        // Paper Sec. 4.5: outliers are clipped at 2^15; the format itself can
        // represent well beyond that.
        assert!(*vals.last().unwrap() >= (1 << 15));
    }

    #[test]
    fn all_formats_round_trip_their_own_grid() {
        for format in AbfloatFormat::four_bit_formats() {
            for bias in [0, 2, 3] {
                for &v in &format.positive_values(bias) {
                    let c = AbfloatCode::encode(v as f32, bias, format);
                    assert_eq!(c.magnitude(bias), v, "{:?} bias {} v {}", format, bias, v);
                }
            }
        }
    }

    #[test]
    fn e2m1_has_lowest_error_on_large_outliers() {
        // A miniature version of Fig. 5: for values spanning a wide range the
        // E2M1 configuration should beat E0M3 (too narrow) and E3M0 (too
        // coarse). This is the property the paper uses to pick E2M1.
        let bias = 2;
        let mut errors = std::collections::HashMap::new();
        for format in AbfloatFormat::four_bit_formats() {
            let mut total = 0.0f64;
            let mut x = 13.0f32;
            while x < 90.0 {
                total += AbfloatCode::rounding_error(x, bias, format) / x as f64;
                x += 1.0;
            }
            errors.insert(format, total);
        }
        let e2m1 = errors[&AbfloatFormat::E2M1];
        assert!(e2m1 <= errors[&AbfloatFormat::E0M3]);
        assert!(e2m1 <= errors[&AbfloatFormat::E3M0]);
    }

    #[test]
    fn exponent_and_mantissa_field_extraction() {
        let c = AbfloatCode::from_bits(AbfloatFormat::E2M1, 0b1101);
        assert!(c.is_negative());
        assert_eq!(c.exponent_field(), 0b10);
        assert_eq!(c.mantissa_field(), 0b1);
    }

    #[test]
    fn zero_code_decodes_to_zero() {
        let c = AbfloatCode::from_bits(AbfloatFormat::E2M1, 0b0000);
        assert_eq!(c.value(2), 0);
        assert!(c.to_expint(2).is_zero());
    }
}
