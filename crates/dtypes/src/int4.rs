//! The OVP `int4` normal-value type.
//!
//! A signed 4-bit integer whose code `1000₂` (-8) is reserved as the outlier
//! identifier, so the representable range is `[-7, 7]` (paper Tbl. 3, Fig. 4).

use crate::expint::ExpInt;
use crate::identifier::OUTLIER_IDENTIFIER_4BIT;

/// A 4-bit OVP integer code (stored in the low nibble of a `u8`).
///
/// The code `1000₂` is *not* a value of this type: it is the outlier
/// identifier. [`Int4::quantize`] therefore never produces it and
/// [`Int4::decode`] maps it to `None`.
///
/// # Examples
///
/// ```
/// use olive_dtypes::Int4;
///
/// let q = Int4::quantize(3.6);
/// assert_eq!(q.value(), 4);
/// assert_eq!(Int4::quantize(-100.0).value(), -7); // saturates, never -8
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Int4(u8);

impl Int4 {
    /// Largest representable magnitude.
    pub const MAX: i32 = 7;
    /// Smallest representable value (the identifier `-8` is excluded).
    pub const MIN: i32 = -7;

    /// Creates an `Int4` from an integer value, saturating to `[-7, 7]`.
    pub fn from_value(v: i32) -> Self {
        let clamped = v.clamp(Self::MIN, Self::MAX);
        Int4((clamped as i8 as u8) & 0x0F)
    }

    /// Quantizes a real value (already divided by the tensor scale) to the
    /// nearest representable integer, saturating at ±7.
    pub fn quantize(x: f32) -> Self {
        Self::from_value(x.round() as i32)
    }

    /// Reconstructs an `Int4` from a raw 4-bit code.
    ///
    /// Returns `None` if the code is the outlier identifier.
    pub fn decode(code: u8) -> Option<Self> {
        let code = code & 0x0F;
        if code == OUTLIER_IDENTIFIER_4BIT {
            None
        } else {
            Some(Int4(code))
        }
    }

    /// The raw 4-bit code (low nibble).
    pub fn code(self) -> u8 {
        self.0
    }

    /// The signed integer value of this code.
    pub fn value(self) -> i32 {
        // Sign-extend the low nibble.
        (((self.0 << 4) as i8) >> 4) as i32
    }

    /// The value as the exponent-integer pair the hardware decoder would emit
    /// (normal `int4` values always carry exponent 0, paper Sec. 4.2).
    pub fn to_expint(self) -> ExpInt {
        ExpInt::new(0, self.value() as i64)
    }

    /// All representable values in ascending order.
    pub fn all_values() -> impl Iterator<Item = i32> {
        Self::MIN..=Self::MAX
    }

    /// Quantization error (absolute) for a scaled input.
    pub fn quantization_error(x: f32) -> f32 {
        (Self::quantize(x).value() as f32 - x).abs()
    }
}

impl std::fmt::Display for Int4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_matches_table3() {
        let values: Vec<i32> = Int4::all_values().collect();
        assert_eq!(values.first(), Some(&-7));
        assert_eq!(values.last(), Some(&7));
        assert_eq!(values.len(), 15);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        assert_eq!(Int4::quantize(2.4).value(), 2);
        assert_eq!(Int4::quantize(2.6).value(), 3);
        assert_eq!(Int4::quantize(-2.6).value(), -3);
        assert_eq!(Int4::quantize(0.0).value(), 0);
    }

    #[test]
    fn quantize_never_produces_identifier() {
        for i in -1000..1000 {
            let x = i as f32 * 0.01;
            assert_ne!(Int4::quantize(x * 100.0).code(), OUTLIER_IDENTIFIER_4BIT);
        }
        assert_eq!(Int4::quantize(f32::NEG_INFINITY).value(), -7);
    }

    #[test]
    fn decode_rejects_identifier() {
        assert!(Int4::decode(OUTLIER_IDENTIFIER_4BIT).is_none());
        assert_eq!(Int4::decode(0b0111).unwrap().value(), 7);
        assert_eq!(Int4::decode(0b1111).unwrap().value(), -1);
    }

    #[test]
    fn code_round_trip() {
        for v in Int4::all_values() {
            let q = Int4::from_value(v);
            let d = Int4::decode(q.code()).unwrap();
            assert_eq!(d.value(), v);
        }
    }

    #[test]
    fn expint_preserves_value() {
        for v in Int4::all_values() {
            assert_eq!(Int4::from_value(v).to_expint().value(), v as i64);
        }
    }

    #[test]
    fn saturation() {
        assert_eq!(Int4::from_value(1000).value(), 7);
        assert_eq!(Int4::from_value(-1000).value(), -7);
    }

    #[test]
    fn display_prints_value() {
        assert_eq!(Int4::from_value(-5).to_string(), "-5");
    }
}
