//! # olive-dtypes
//!
//! The numeric data types of the OliVe quantization scheme (paper Sec. 3):
//!
//! * **Normal-value types** (Tbl. 3): [`int4`], [`flint4`] and [`int8`]. In each
//!   type one code word — the all-but-sign-zero pattern `1000…0₂` — is removed
//!   from the value range and reserved as the **outlier identifier** that marks
//!   a victim slot inside an outlier-victim pair.
//! * **Outlier type** (Sec. 3.3): [`abfloat`], an *adaptive biased float* stored
//!   as fixed-point-with-exponent, `value = sign · ((1 << mb) + mantissa) <<
//!   (exponent + bias)`. The adaptive bias shifts the representable range just
//!   above the normal-value range so no code words are wasted on values that
//!   normal types already cover. The paper selects E2M1 for 4-bit outliers and
//!   E4M3 for 8-bit outliers.
//! * **Exponent–integer pairs** ([`expint`]): the unified representation that
//!   the hardware decoders (Fig. 6b / Fig. 7) emit and the MAC units consume
//!   (Sec. 4.4): `value = integer << exponent`, multiplied by adding exponents
//!   and multiplying integers, accumulated in `i64` (hardware: int32 per the
//!   paper, with outliers clipped at 2¹⁵ to avoid overflow).
//!
//! Everything in this crate operates on *integer grids*: a separate per-tensor
//! scale factor (managed by `olive-core`) maps real values onto the grid.

pub mod abfloat;
pub mod expint;
pub mod flint4;
pub mod identifier;
pub mod int4;
pub mod int8;

pub use abfloat::{AbfloatCode, AbfloatFormat};
pub use expint::ExpInt;
pub use flint4::Flint4;
pub use identifier::{OUTLIER_IDENTIFIER_4BIT, OUTLIER_IDENTIFIER_8BIT};
pub use int4::Int4;
pub use int8::Int8;

/// The normal-value data types supported by the OVP encoding (paper Tbl. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormalDataType {
    /// Signed 4-bit integer, range ±7 after removing the identifier.
    Int4,
    /// ANT's 4-bit float-int hybrid: 0, ±1, ±2, ±3, ±4, ±6, ±8, ±16.
    Flint4,
    /// Signed 8-bit integer, range ±127 after removing the identifier.
    Int8,
}

impl NormalDataType {
    /// Bit width of the type.
    pub fn bits(self) -> u32 {
        match self {
            NormalDataType::Int4 | NormalDataType::Flint4 => 4,
            NormalDataType::Int8 => 8,
        }
    }

    /// Largest representable magnitude on the integer grid (identifier removed).
    pub fn max_magnitude(self) -> i32 {
        match self {
            NormalDataType::Int4 => 7,
            NormalDataType::Flint4 => 16,
            NormalDataType::Int8 => 127,
        }
    }

    /// The abfloat exponent bias that makes the outlier range complementary to
    /// this normal type (paper Sec. 3.3: bias 2 for `int4`, bias 3 for
    /// `flint4`; for `int8` the 8-bit E4M3 outliers start above 127 with
    /// bias 4).
    pub fn complementary_abfloat_bias(self) -> i32 {
        match self {
            NormalDataType::Int4 => 2,
            NormalDataType::Flint4 => 3,
            NormalDataType::Int8 => 4,
        }
    }

    /// The abfloat format paired with this normal type (E2M1 for 4-bit types,
    /// E4M3 for int8), per paper Sec. 3.3 and Sec. 4.5.
    pub fn outlier_format(self) -> AbfloatFormat {
        match self {
            NormalDataType::Int4 | NormalDataType::Flint4 => AbfloatFormat::E2M1,
            NormalDataType::Int8 => AbfloatFormat::E4M3,
        }
    }
}

impl std::fmt::Display for NormalDataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NormalDataType::Int4 => "int4",
            NormalDataType::Flint4 => "flint4",
            NormalDataType::Int8 => "int8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_ranges_match_table3() {
        assert_eq!(NormalDataType::Int4.bits(), 4);
        assert_eq!(NormalDataType::Flint4.bits(), 4);
        assert_eq!(NormalDataType::Int8.bits(), 8);
        assert_eq!(NormalDataType::Int4.max_magnitude(), 7);
        assert_eq!(NormalDataType::Flint4.max_magnitude(), 16);
        assert_eq!(NormalDataType::Int8.max_magnitude(), 127);
    }

    #[test]
    fn complementary_biases_match_section_3_3() {
        assert_eq!(NormalDataType::Int4.complementary_abfloat_bias(), 2);
        assert_eq!(NormalDataType::Flint4.complementary_abfloat_bias(), 3);
    }

    #[test]
    fn outlier_formats() {
        assert_eq!(NormalDataType::Int4.outlier_format(), AbfloatFormat::E2M1);
        assert_eq!(NormalDataType::Int8.outlier_format(), AbfloatFormat::E4M3);
    }

    #[test]
    fn display_names() {
        assert_eq!(NormalDataType::Int4.to_string(), "int4");
        assert_eq!(NormalDataType::Flint4.to_string(), "flint4");
        assert_eq!(NormalDataType::Int8.to_string(), "int8");
    }
}
