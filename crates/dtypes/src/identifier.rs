//! The outlier identifier code words.
//!
//! The OVP encoding reserves exactly one code word per normal data type to mark
//! the victim slot of an outlier-victim pair (paper Sec. 3.1, Fig. 4):
//!
//! * 4-bit types (`int4`, `flint4`): `1000₂`, which is `-8` in two's-complement
//!   `int4` and `-0` in `flint4` — neither is needed for normal values.
//! * 8-bit `int8`: `1000_0000₂` (`-128`).
//!
//! The identifier is what makes the encoding *globally identical but locally
//! distinguishable*: a decoder that reads one byte can tell whether it holds a
//! normal-normal pair or an outlier-victim pair purely from the presence of the
//! identifier nibble/byte, without any side-band index structure.

/// The 4-bit outlier identifier code (`1000₂`).
pub const OUTLIER_IDENTIFIER_4BIT: u8 = 0b1000;

/// The 8-bit outlier identifier code (`1000_0000₂`).
pub const OUTLIER_IDENTIFIER_8BIT: u8 = 0b1000_0000;

/// Returns `true` if a 4-bit code (low nibble) is the outlier identifier.
///
/// # Examples
///
/// ```
/// use olive_dtypes::identifier::{is_identifier_4bit, OUTLIER_IDENTIFIER_4BIT};
///
/// assert!(is_identifier_4bit(OUTLIER_IDENTIFIER_4BIT));
/// assert!(!is_identifier_4bit(0b0111));
/// ```
pub fn is_identifier_4bit(code: u8) -> bool {
    (code & 0x0F) == OUTLIER_IDENTIFIER_4BIT
}

/// Returns `true` if an 8-bit code is the outlier identifier.
pub fn is_identifier_8bit(code: u8) -> bool {
    code == OUTLIER_IDENTIFIER_8BIT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_values_match_paper() {
        assert_eq!(OUTLIER_IDENTIFIER_4BIT, 0b1000);
        assert_eq!(OUTLIER_IDENTIFIER_8BIT, 0b1000_0000);
    }

    #[test]
    fn identifier_is_int4_minus_eight() {
        // Sign-extend 1000₂ as a 4-bit two's-complement value.
        let v = ((OUTLIER_IDENTIFIER_4BIT << 4) as i8) >> 4;
        assert_eq!(v, -8);
    }

    #[test]
    fn identifier_is_int8_minus_128() {
        assert_eq!(OUTLIER_IDENTIFIER_8BIT as i8, -128);
    }

    #[test]
    fn only_one_4bit_code_is_identifier() {
        let count = (0u8..16).filter(|&c| is_identifier_4bit(c)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn only_one_8bit_code_is_identifier() {
        let count = (0u16..256).filter(|&c| is_identifier_8bit(c as u8)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn high_nibble_is_ignored_for_4bit_check() {
        assert!(is_identifier_4bit(0b0111_1000));
    }
}
