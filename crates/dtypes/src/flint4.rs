//! The `flint4` normal-value type (ANT's 4-bit float-int hybrid).
//!
//! `flint4` comes from the ANT quantization framework (MICRO '22), which OliVe
//! builds on for normal values. Its representable magnitudes are
//! `{0, 1, 2, 3, 4, 6, 8, 16}` (paper Tbl. 3): small values get integer-like
//! resolution, large values get float-like range. The code `1000₂` would be
//! `-0`, which is meaningless, so OliVe reuses it as the outlier identifier
//! without sacrificing any representable number.

use crate::expint::ExpInt;
use crate::identifier::OUTLIER_IDENTIFIER_4BIT;

/// Representable non-negative magnitudes of `flint4`, indexed by the low three
/// bits of the code.
pub const FLINT4_MAGNITUDES: [i32; 8] = [0, 1, 2, 3, 4, 6, 8, 16];

/// A 4-bit `flint4` code: sign bit (bit 3) plus a 3-bit magnitude index.
///
/// # Examples
///
/// ```
/// use olive_dtypes::Flint4;
///
/// assert_eq!(Flint4::quantize(5.4).value(), 6);
/// assert_eq!(Flint4::quantize(-11.0).value(), -8);
/// assert_eq!(Flint4::quantize(100.0).value(), 16); // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flint4(u8);

impl Flint4 {
    /// Largest representable magnitude.
    pub const MAX: i32 = 16;

    /// Creates a code from a sign and magnitude index.
    ///
    /// # Panics
    ///
    /// Panics if `mag_idx > 7`.
    fn from_parts(negative: bool, mag_idx: u8) -> Self {
        assert!(mag_idx < 8, "magnitude index out of range");
        if negative && mag_idx == 0 {
            // -0 is the identifier; canonicalise to +0.
            return Flint4(0);
        }
        Flint4(((negative as u8) << 3) | mag_idx)
    }

    /// Quantizes a real value (already divided by the tensor scale) to the
    /// nearest representable `flint4` value, saturating at ±16.
    pub fn quantize(x: f32) -> Self {
        if x.is_nan() {
            return Flint4(0);
        }
        let negative = x < 0.0;
        // Clamp before the nearest-value search so huge magnitudes saturate
        // instead of losing the comparison to f32 rounding noise.
        let mag = x.abs().min(Self::MAX as f32);
        // Nearest magnitude (ties resolved toward the smaller index, matching
        // round-half-down on the irregular grid).
        let mut best = 0usize;
        let mut best_err = f32::INFINITY;
        for (i, &m) in FLINT4_MAGNITUDES.iter().enumerate() {
            let err = (mag - m as f32).abs();
            if err < best_err {
                best_err = err;
                best = i;
            }
        }
        Self::from_parts(negative, best as u8)
    }

    /// Reconstructs a `Flint4` from a raw 4-bit code.
    ///
    /// Returns `None` if the code is the outlier identifier (`1000₂`, i.e. -0).
    pub fn decode(code: u8) -> Option<Self> {
        let code = code & 0x0F;
        if code == OUTLIER_IDENTIFIER_4BIT {
            None
        } else {
            Some(Flint4(code))
        }
    }

    /// The raw 4-bit code (low nibble).
    pub fn code(self) -> u8 {
        self.0
    }

    /// The signed value of this code.
    pub fn value(self) -> i32 {
        let mag = FLINT4_MAGNITUDES[(self.0 & 0x7) as usize];
        if self.0 & 0x8 != 0 {
            -mag
        } else {
            mag
        }
    }

    /// The value as the exponent-integer pair the flint decoder emits
    /// (paper Sec. 4.2 reuses ANT's original decoder).
    ///
    /// Every magnitude is expressible as `integer << exponent` with a 2-bit
    /// integer: 0, 1, 2, 3, 4 = 1<<2, 6 = 3<<1, 8 = 1<<3, 16 = 1<<4.
    pub fn to_expint(self) -> ExpInt {
        let v = self.value();
        let (exp, int) = match v.abs() {
            0 => (0, 0),
            1 => (0, 1),
            2 => (1, 1),
            3 => (0, 3),
            4 => (2, 1),
            6 => (1, 3),
            8 => (3, 1),
            16 => (4, 1),
            _ => unreachable!("non-representable flint4 magnitude"),
        };
        ExpInt::new(exp, if v < 0 { -int } else { int })
    }

    /// All representable values in ascending order (deduplicated zero).
    pub fn all_values() -> Vec<i32> {
        let mut v: Vec<i32> = FLINT4_MAGNITUDES.iter().flat_map(|&m| [m, -m]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl std::fmt::Display for Flint4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_set_matches_table3() {
        let values = Flint4::all_values();
        let expected = vec![-16, -8, -6, -4, -3, -2, -1, 0, 1, 2, 3, 4, 6, 8, 16];
        assert_eq!(values, expected);
    }

    #[test]
    fn quantize_picks_nearest_grid_point() {
        assert_eq!(Flint4::quantize(4.9).value(), 4);
        assert_eq!(Flint4::quantize(5.1).value(), 6);
        assert_eq!(Flint4::quantize(7.1).value(), 8);
        assert_eq!(Flint4::quantize(12.1).value(), 16);
        assert_eq!(Flint4::quantize(-2.4).value(), -2);
    }

    #[test]
    fn quantize_never_produces_identifier() {
        for i in -200..200 {
            let x = i as f32 * 0.1;
            assert_ne!(Flint4::quantize(x).code(), OUTLIER_IDENTIFIER_4BIT);
        }
    }

    #[test]
    fn negative_zero_is_canonicalised() {
        assert_eq!(Flint4::quantize(-0.001).code(), 0);
        assert_eq!(Flint4::quantize(-0.001).value(), 0);
    }

    #[test]
    fn decode_rejects_identifier() {
        assert!(Flint4::decode(OUTLIER_IDENTIFIER_4BIT).is_none());
    }

    #[test]
    fn code_round_trip() {
        for code in 0u8..16 {
            if code == OUTLIER_IDENTIFIER_4BIT {
                continue;
            }
            let f = Flint4::decode(code).unwrap();
            let again = Flint4::decode(f.code()).unwrap();
            assert_eq!(f.value(), again.value());
        }
    }

    #[test]
    fn expint_preserves_value() {
        for code in 0u8..16 {
            if let Some(f) = Flint4::decode(code) {
                assert_eq!(f.to_expint().value(), f.value() as i64, "code {code}");
            }
        }
    }

    #[test]
    fn saturates_at_sixteen() {
        assert_eq!(Flint4::quantize(1e9).value(), 16);
        assert_eq!(Flint4::quantize(-1e9).value(), -16);
    }
}
