//! The dense row-major [`Tensor`] type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are arbitrary-rank, but the workspace mostly uses rank-1 and rank-2
/// tensors. Data is stored contiguously in row-major order.
///
/// # Examples
///
/// ```
/// use olive_tensor::Tensor;
///
/// let t = Tensor::zeros(vec![2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// Zero-sized dimensions are allowed (`[0, 4]` is a valid, empty matrix);
    /// GEMM edge cases rely on this.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty (rank 0).
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = checked_numel(&shape);
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = checked_numel(&shape);
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from a flat, row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n = checked_numel(&shape);
        assert_eq!(
            n,
            data.len(),
            "shape {:?} implies {} elements but data has {}",
            shape,
            n,
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// Returns the tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements (some dimension is zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the number of rows of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a rank-2 tensor");
        self.shape[0]
    }

    /// Returns the number of columns of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a rank-2 tensor");
        self.shape[1]
    }

    /// Returns a view of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable view of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a flat (row-major) index.
    pub fn get_flat(&self, idx: usize) -> f32 {
        self.data[idx]
    }

    /// Sets the element at a flat (row-major) index.
    pub fn set_flat(&mut self, idx: usize, value: f32) {
        self.data[idx] = value;
    }

    /// Returns a row of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Returns a mutable row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Reshapes the tensor in place (the number of elements must not change).
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let n = checked_numel(&shape);
        assert_eq!(n, self.data.len(), "reshape must preserve element count");
        self.shape = shape;
        self
    }

    /// Returns the transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: vec![c, r],
            data: out,
        }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in sub");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in mul");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Mean squared error between two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mse(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in mse");
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum();
        sum / self.data.len() as f64
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

fn checked_numel(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "tensor shape must not be empty");
    let mut n: usize = 1;
    for &d in shape {
        n = n
            .checked_mul(d)
            .expect("tensor element count overflows usize");
    }
    n
}

impl Index<usize> for Tensor {
    type Output = f32;

    fn index(&self, idx: usize) -> &f32 {
        &self.data[idx]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, idx: usize) -> &mut f32 {
        &mut self.data[idx]
    }
}

impl Index<[usize; 2]> for Tensor {
    type Output = f32;

    fn index(&self, idx: [usize; 2]) -> &f32 {
        let c = self.cols();
        &self.data[idx[0] * c + idx[1]]
    }
}

impl IndexMut<[usize; 2]> for Tensor {
    fn index_mut(&mut self, idx: [usize; 2]) -> &mut f32 {
        let c = self.cols();
        &mut self.data[idx[0] * c + idx[1]]
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            shape: vec![1],
            data: vec![0.0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let t = Tensor::zeros(vec![3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_round_trips() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let t = Tensor::from_vec(vec![2, 2], data.clone());
        assert_eq!(t.into_vec(), data);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_mismatched_length() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_d_indexing() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t[[1, 2]] = 7.0;
        assert_eq!(t[[1, 2]], 7.0);
        assert_eq!(t[5], 7.0);
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tt = t.transpose().transpose();
        assert_eq!(t, tt);
    }

    #[test]
    fn transpose_swaps_indices() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tr = t.transpose();
        assert_eq!(tr.shape(), &[3, 2]);
        assert_eq!(tr[[2, 1]], t[[1, 2]]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn mse_of_identical_tensors_is_zero() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(a.mse(&a), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        assert!((a.mse(&b) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn max_abs_finds_negative_extreme() {
        let a = Tensor::from_slice(&[1.0, -9.0, 3.0]);
        assert_eq!(a.max_abs(), 9.0);
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.clone().reshape(vec![3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn zero_dimension_yields_empty_tensor() {
        let t = Tensor::zeros(vec![2, 0]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 0);
        let tr = t.transpose();
        assert_eq!(tr.shape(), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rank_zero_shape_rejected() {
        let _ = Tensor::zeros(vec![]);
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let t = Tensor::zeros(vec![2]);
        assert!(!format!("{:?}", t).is_empty());
    }
}
