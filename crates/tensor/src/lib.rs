//! # olive-tensor
//!
//! A minimal, dependency-free dense tensor library used throughout the OliVe
//! reproduction.
//!
//! It deliberately implements only what the rest of the workspace needs:
//!
//! * a row-major [`Tensor`] of `f32` values with 1-D/2-D convenience accessors,
//! * dense [`matmul`](crate::matmul::matmul) plus a handful of neural-network
//!   helpers (softmax, layer norm, GELU),
//! * tensor [`stats`] (mean, standard deviation, max-σ, outlier fractions) which
//!   drive the paper's outlier analysis (Fig. 2, Tbl. 2),
//! * a small deterministic [`rng`] (SplitMix64-based) with Gaussian and
//!   heavy-tailed samplers so every experiment is reproducible without
//!   external crates.
//!
//! ## Example
//!
//! ```
//! use olive_tensor::Tensor;
//! use olive_tensor::matmul::matmul;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
//! let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
//! let c = matmul(&a, &b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c[[0, 0]], 58.0);
//! ```

pub mod matmul;
pub mod rng;
pub mod stats;
pub mod tensor;

pub use tensor::Tensor;
