//! Tensor statistics used by the outlier analysis.
//!
//! OliVe's motivation sections (Fig. 2 and Tbl. 2 of the paper) rest entirely
//! on a few per-tensor statistics: the standard deviation σ, the maximum value
//! normalised by σ ("max σ"), and the fractions of values above 3σ and 6σ.
//! [`TensorStats`] computes all of them in a single pass.

use crate::Tensor;

/// Summary statistics of a tensor, used by the outlier analysis.
///
/// # Examples
///
/// ```
/// use olive_tensor::Tensor;
/// use olive_tensor::stats::TensorStats;
///
/// let t = Tensor::from_slice(&[0.0, 1.0, -1.0, 2.0, -2.0, 30.0]);
/// let s = TensorStats::compute(&t);
/// assert!(s.max_sigma > 2.0);
/// assert_eq!(s.frac_gt_6sigma, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorStats {
    /// Arithmetic mean of all elements.
    pub mean: f64,
    /// Standard deviation (population) of all elements.
    pub std: f64,
    /// Maximum absolute element value.
    pub max_abs: f64,
    /// Maximum absolute deviation from the mean, normalised by σ ("Max σ").
    pub max_sigma: f64,
    /// Fraction of elements whose |x - mean| exceeds 3σ.
    pub frac_gt_3sigma: f64,
    /// Fraction of elements whose |x - mean| exceeds 6σ.
    pub frac_gt_6sigma: f64,
    /// Number of elements.
    pub count: usize,
}

impl TensorStats {
    /// Computes the statistics of `t` in a single pass (plus one pass for the
    /// σ-normalised counts).
    pub fn compute(t: &Tensor) -> Self {
        Self::from_slice(t.data())
    }

    /// Computes the statistics of a raw slice.
    pub fn from_slice(data: &[f32]) -> Self {
        let n = data.len();
        if n == 0 {
            return TensorStats {
                mean: 0.0,
                std: 0.0,
                max_abs: 0.0,
                max_sigma: 0.0,
                frac_gt_3sigma: 0.0,
                frac_gt_6sigma: 0.0,
                count: 0,
            };
        }
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max_abs = 0.0f64;
        for &x in data {
            let x = x as f64;
            sum += x;
            sum_sq += x * x;
            max_abs = max_abs.max(x.abs());
        }
        let mean = sum / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        let std = var.sqrt();

        let (mut c3, mut c6, mut max_dev) = (0usize, 0usize, 0.0f64);
        if std > 0.0 {
            for &x in data {
                let dev = ((x as f64) - mean).abs();
                max_dev = max_dev.max(dev);
                if dev > 3.0 * std {
                    c3 += 1;
                }
                if dev > 6.0 * std {
                    c6 += 1;
                }
            }
        }
        TensorStats {
            mean,
            std,
            max_abs,
            max_sigma: if std > 0.0 { max_dev / std } else { 0.0 },
            frac_gt_3sigma: c3 as f64 / n as f64,
            frac_gt_6sigma: c6 as f64 / n as f64,
            count: n,
        }
    }

    /// Fraction of values more than `k`·σ away from the mean.
    ///
    /// Recomputed on demand for arbitrary `k`; the common 3σ/6σ fractions are
    /// cached fields.
    pub fn frac_above(&self, k: f64) -> f64 {
        if (k - 3.0).abs() < f64::EPSILON {
            self.frac_gt_3sigma
        } else if (k - 6.0).abs() < f64::EPSILON {
            self.frac_gt_6sigma
        } else {
            // Callers that need a non-standard k should use `outlier_fraction`.
            f64::NAN
        }
    }
}

/// The 3σ-rule outlier threshold of a slice: `mean + k * σ` on the absolute
/// deviation scale (returned as an absolute-value threshold).
pub fn sigma_threshold(data: &[f32], k: f64) -> f32 {
    let s = TensorStats::from_slice(data);
    (s.mean.abs() + k * s.std) as f32
}

/// Fraction of elements whose absolute deviation from the mean exceeds `k`·σ.
pub fn outlier_fraction(data: &[f32], k: f64) -> f64 {
    let s = TensorStats::from_slice(data);
    if s.std == 0.0 || data.is_empty() {
        return 0.0;
    }
    let thr = k * s.std;
    data.iter()
        .filter(|&&x| ((x as f64) - s.mean).abs() > thr)
        .count() as f64
        / data.len() as f64
}

/// Classifies each element as an outlier (`true`) or normal value (`false`)
/// according to the `k`-σ rule.
pub fn outlier_mask(data: &[f32], k: f64) -> Vec<bool> {
    let s = TensorStats::from_slice(data);
    let thr = k * s.std;
    data.iter()
        .map(|&x| ((x as f64) - s.mean).abs() > thr)
        .collect()
}

/// Mean squared error between two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Mean absolute error between two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mae length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).abs())
        .sum::<f64>()
        / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn stats_of_constant_tensor() {
        let t = Tensor::full(vec![10], 5.0);
        let s = TensorStats::compute(&t);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.max_sigma, 0.0);
        assert_eq!(s.frac_gt_3sigma, 0.0);
    }

    #[test]
    fn stats_of_gaussian_follow_three_sigma_rule() {
        let mut rng = Rng::seed_from(42);
        let mut data = vec![0.0f32; 50_000];
        rng.fill_normal(&mut data, 0.0, 1.0);
        let s = TensorStats::from_slice(&data);
        assert!((s.mean).abs() < 0.02);
        assert!((s.std - 1.0).abs() < 0.02);
        // ~0.27% of a Gaussian lies beyond 3σ.
        assert!(s.frac_gt_3sigma < 0.006, "{}", s.frac_gt_3sigma);
        assert!(s.frac_gt_3sigma > 0.0005, "{}", s.frac_gt_3sigma);
        assert!(s.max_sigma < 6.0);
    }

    #[test]
    fn outlier_mask_flags_planted_outlier() {
        let mut data = vec![0.0f32; 1000];
        let mut rng = Rng::seed_from(1);
        rng.fill_normal(&mut data, 0.0, 1.0);
        data[500] = 100.0;
        let mask = outlier_mask(&data, 3.0);
        assert!(mask[500]);
        let count = mask.iter().filter(|&&m| m).count();
        assert!(count < 20);
    }

    #[test]
    fn sigma_threshold_scales_with_k() {
        let mut data = vec![0.0f32; 10_000];
        let mut rng = Rng::seed_from(2);
        rng.fill_normal(&mut data, 0.0, 2.0);
        let t3 = sigma_threshold(&data, 3.0);
        let t6 = sigma_threshold(&data, 6.0);
        assert!(t6 > t3);
        assert!((t3 - 6.0).abs() < 0.5, "t3 = {}", t3);
    }

    #[test]
    fn mse_and_mae_basic() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 4.0, 3.0];
        assert!((mse(&a, &b) - 4.0 / 3.0).abs() < 1e-9);
        assert!((mae(&a, &b) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_slice_stats_are_zero() {
        let s = TensorStats::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn frac_above_matches_cached_fields() {
        let mut data = vec![0.0f32; 10_000];
        let mut rng = Rng::seed_from(3);
        rng.fill_normal(&mut data, 0.0, 1.0);
        let s = TensorStats::from_slice(&data);
        assert_eq!(s.frac_above(3.0), s.frac_gt_3sigma);
        assert_eq!(s.frac_above(6.0), s.frac_gt_6sigma);
    }
}
