//! Dense matrix multiplication and common neural-network primitives.
//!
//! The GEMM kernels are cache-blocked (tiled over `i`/`k`/`j`) and
//! parallelised over row blocks on the [`olive_runtime`] worker pool. The
//! decomposition follows the runtime's determinism contract: every row of the
//! output is computed by the same kernel code with the same `k`-ascending
//! accumulation order no matter how many threads run (`OLIVE_THREADS=1` and
//! `OLIVE_THREADS=8` produce bit-identical tensors).

use crate::Tensor;
use std::ops::Range;

/// `k`-tile: rows of `B` (or columns of `Bᵀ`) kept hot in cache per pass.
const KC: usize = 128;
/// `j`-tile: output columns processed per pass, keeping the `B` panel
/// (`KC × NC` floats) within L2.
const NC: usize = 512;

/// Total fused multiply-adds of an `[m,k] × [k,n]` GEMM, the cost measure fed
/// to [`olive_runtime::should_parallelize`].
fn gemm_work(m: usize, k: usize, n: usize) -> u64 {
    m as u64 * k as u64 * n as u64
}

/// Computes rows `rows` of `C = A × B` into `out` (which holds exactly those
/// rows, zero-initialised). Tiled `j0 → k0 → i → k → j`; for any fixed output
/// element the `k` accumulation order is ascending, independent of `rows`
/// splits — the bit-determinism anchor for the parallel path.
fn gemm_block(ad: &[f32], bd: &[f32], k: usize, n: usize, rows: Range<usize>, out: &mut [f32]) {
    for j0 in (0..n).step_by(NC) {
        let j1 = (j0 + NC).min(n);
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for (ri, i) in rows.clone().enumerate() {
                let arow = &ad[i * k..(i + 1) * k];
                let orow = &mut out[ri * n + j0..ri * n + j1];
                for kk in k0..k1 {
                    let av = arow[kk];
                    // Zero activations (pruned victims) contribute nothing.
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[kk * n + j0..kk * n + j1];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// Computes rows `rows` of `C = A × Bᵀ` into `out` (holding those rows).
/// Each output element is one dot product accumulated in ascending `k` order.
fn gemm_tb_block(ad: &[f32], bd: &[f32], k: usize, n: usize, rows: Range<usize>, out: &mut [f32]) {
    for (ri, i) in rows.enumerate() {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[ri * n..(ri + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// Dense row-major GEMM: `C = A × B`.
///
/// `a` must be `[m, k]` and `b` must be `[k, n]`; the result is `[m, n]`.
/// Zero-sized operands (`m`, `k` or `n` equal to 0) are valid and produce an
/// empty (or all-zero, for `k = 0`) result.
///
/// The kernel is cache-blocked and, when the matrices are large enough, runs
/// row blocks in parallel on the [`olive_runtime`] pool (thread count from
/// `OLIVE_THREADS`, default [`std::thread::available_parallelism`]). The
/// result is bit-identical for every thread count.
///
/// # Panics
///
/// Panics if the inner dimensions do not match or the inputs are not rank-2.
///
/// # Examples
///
/// ```
/// use olive_tensor::Tensor;
/// use olive_tensor::matmul::matmul;
///
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]);
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0]);
/// assert_eq!(matmul(&a, &b)[[0, 0]], 11.0);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul inner dimensions mismatch: {} vs {}", k, kb);

    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    if olive_runtime::should_parallelize(m, gemm_work(m, k, n)) {
        olive_runtime::par_rows_mut(m, n, &mut out, |rows, block| {
            gemm_block(ad, bd, k, n, rows, block);
        });
    } else {
        gemm_block(ad, bd, k, n, 0..m, &mut out);
    }
    Tensor::from_vec(vec![m, n], out)
}

/// `C = A × Bᵀ` without materialising the transpose.
///
/// `a` is `[m, k]`, `b` is `[n, k]`; the result is `[m, n]`. Zero-sized
/// operands are valid. Parallelised over row blocks like [`matmul`], with the
/// same bit-determinism guarantee across thread counts.
///
/// # Panics
///
/// Panics if the inner dimensions do not match.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_transpose_b inner dimensions mismatch");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    if olive_runtime::should_parallelize(m, gemm_work(m, k, n)) {
        olive_runtime::par_rows_mut(m, n, &mut out, |rows, block| {
            gemm_tb_block(ad, bd, k, n, rows, block);
        });
    } else {
        gemm_tb_block(ad, bd, k, n, 0..m, &mut out);
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Adds a rank-1 bias (length `n`) to every row of a `[m, n]` tensor.
///
/// # Panics
///
/// Panics if the bias length does not match the number of columns.
pub fn add_bias(x: &Tensor, bias: &[f32]) -> Tensor {
    let (m, n) = (x.rows(), x.cols());
    assert_eq!(n, bias.len(), "bias length mismatch");
    let mut out = x.clone();
    for i in 0..m {
        let row = out.row_mut(i);
        for j in 0..n {
            row[j] += bias[j];
        }
    }
    out
}

/// Row-wise softmax of a `[m, n]` tensor.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (m, n) = (x.rows(), x.cols());
    let mut out = x.clone();
    for i in 0..m {
        let row = out.row_mut(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        } else {
            let u = 1.0 / n as f32;
            for v in row.iter_mut() {
                *v = u;
            }
        }
    }
    out
}

/// Row-wise layer normalisation with learned scale (`gamma`) and shift (`beta`).
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths do not match the number of columns.
pub fn layer_norm(x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> Tensor {
    let (m, n) = (x.rows(), x.cols());
    assert_eq!(n, gamma.len(), "gamma length mismatch");
    assert_eq!(n, beta.len(), "beta length mismatch");
    let mut out = x.clone();
    for i in 0..m {
        let row = out.row_mut(i);
        let mean: f32 = row.iter().sum::<f32>() / n as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for j in 0..n {
            row[j] = (row[j] - mean) * inv * gamma[j] + beta[j];
        }
    }
    out
}

/// The GELU activation (tanh approximation), applied element-wise.
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(|v| {
        let v3 = v * v * v;
        0.5 * v * (1.0 + ((0.797_884_6_f32) * (v + 0.044715 * v3)).tanh())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let id = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Tensor::from_vec(vec![4, 3], (0..12).map(|i| i as f32 * 0.3 - 1.0).collect());
        let direct = matmul_transpose_b(&a, &b);
        let explicit = matmul(&a, &b.transpose());
        for i in 0..direct.len() {
            assert!(close(direct[i], explicit[i]));
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn zero_sized_gemm_cases() {
        for threads in [1usize, 8] {
            olive_runtime::with_threads(threads, || {
                // m = 0: no output rows.
                let c = matmul(&Tensor::zeros(vec![0, 3]), &Tensor::zeros(vec![3, 4]));
                assert_eq!(c.shape(), &[0, 4]);
                assert!(c.is_empty());
                // n = 0: rows exist but are empty.
                let c = matmul(&Tensor::zeros(vec![2, 3]), &Tensor::zeros(vec![3, 0]));
                assert_eq!(c.shape(), &[2, 0]);
                // k = 0: an [m,0] x [0,n] product is the m x n zero matrix.
                let c = matmul(&Tensor::zeros(vec![2, 0]), &Tensor::zeros(vec![0, 4]));
                assert_eq!(c.shape(), &[2, 4]);
                assert!(c.data().iter().all(|&v| v == 0.0));
                // Same edges through the transposed-B path.
                let c = matmul_transpose_b(&Tensor::zeros(vec![0, 3]), &Tensor::zeros(vec![5, 3]));
                assert_eq!(c.shape(), &[0, 5]);
                let c = matmul_transpose_b(&Tensor::zeros(vec![2, 0]), &Tensor::zeros(vec![5, 0]));
                assert_eq!(c.shape(), &[2, 5]);
                assert!(c.data().iter().all(|&v| v == 0.0));
            });
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_sequential() {
        // Big enough to clear the parallel work threshold, with shapes that
        // are not multiples of the kernel tiles.
        let mut next = 0x243F_6A88u32;
        let mut gen = |shape: Vec<usize>| {
            let n: usize = shape.iter().product();
            let data = (0..n)
                .map(|_| {
                    next = next.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    (next >> 8) as f32 / (1u32 << 24) as f32 - 0.5
                })
                .collect();
            Tensor::from_vec(shape, data)
        };
        let a = gen(vec![67, 131]);
        let b = gen(vec![131, 53]);
        let bt = gen(vec![53, 131]);
        let seq = olive_runtime::with_threads(1, || matmul(&a, &b));
        let par = olive_runtime::with_threads(8, || matmul(&a, &b));
        assert_eq!(seq, par, "matmul must be bit-identical across threads");
        let seq = olive_runtime::with_threads(1, || matmul_transpose_b(&a, &bt));
        let par = olive_runtime::with_threads(8, || matmul_transpose_b(&a, &bt));
        assert_eq!(seq, par, "matmul_transpose_b must be bit-identical");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!(close(sum, 1.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]);
        let y = Tensor::from_vec(vec![1, 3], vec![101.0, 102.0, 103.0]);
        let sx = softmax_rows(&x);
        let sy = softmax_rows(&y);
        for i in 0..3 {
            assert!(close(sx[i], sy[i]));
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Tensor::from_vec(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let g = vec![1.0; 4];
        let b = vec![0.0; 4];
        let y = layer_norm(&x, &g, &b, 1e-5);
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn add_bias_adds_per_column() {
        let x = Tensor::zeros(vec![2, 3]);
        let y = add_bias(&x, &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(y.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn gelu_behaviour_at_extremes() {
        let x = Tensor::from_slice(&[-10.0, 0.0, 10.0]);
        let y = gelu(&x);
        assert!(y[0].abs() < 1e-3);
        assert_eq!(y[1], 0.0);
        assert!((y[2] - 10.0).abs() < 1e-3);
    }
}
