//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction must be runnable offline and bit-reproducibly, so we
//! ship a tiny xoshiro256++ generator seeded through SplitMix64 instead of
//! depending on platform entropy. On top of the raw generator the module
//! provides the samplers the synthetic tensor generator needs: uniform,
//! Gaussian (Box–Muller), Student-t (heavy tails for transformer outliers) and
//! log-normal.

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// # Examples
///
/// ```
/// use olive_tensor::rng::Rng;
///
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_cache: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng {
            state,
            gauss_cache: None,
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }

    /// Returns a uniform integer in `[0, n)`, exact for every `n` up to
    /// `u64::MAX` (rejection sampling, no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below_u64(0) is not a valid range");
        // Accept draws below the largest multiple of n; for n < 2^32 the
        // rejection probability is < 2^-32, so one draw almost always suffices.
        let rem = (u64::MAX % n).wrapping_add(1) % n; // 2^64 mod n
        loop {
            let x = self.next_u64();
            if rem == 0 || x <= u64::MAX - rem {
                return x % n;
            }
        }
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Samples from `N(mean, std²)` using the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        if let Some(z) = self.gauss_cache.take() {
            return mean + std * z;
        }
        // Box–Muller; avoid u1 == 0.
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = r * theta.cos();
        let z1 = r * theta.sin();
        self.gauss_cache = Some(z1);
        mean + std * z0
    }

    /// Samples a Student-t variate with `dof` degrees of freedom.
    ///
    /// Heavy-tailed for small `dof`; used to model transformer activation and
    /// weight outliers (Fig. 2 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `dof <= 0`.
    pub fn student_t(&mut self, dof: f64) -> f64 {
        assert!(dof > 0.0, "degrees of freedom must be positive");
        let z = self.normal(0.0, 1.0);
        let chi2 = self.chi_squared(dof);
        z / (chi2 / dof).sqrt()
    }

    /// Samples a chi-squared variate with `dof` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `dof <= 0`.
    pub fn chi_squared(&mut self, dof: f64) -> f64 {
        assert!(dof > 0.0, "degrees of freedom must be positive");
        self.gamma(dof / 2.0, 2.0)
    }

    /// Samples a Gamma(shape, scale) variate (Marsaglia–Tsang).
    ///
    /// # Panics
    ///
    /// Panics if `shape <= 0` or `scale <= 0`.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape > 0.0 && scale > 0.0,
            "gamma parameters must be positive"
        );
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
            let g = self.gamma(shape + 1.0, scale);
            let u = loop {
                let u = self.uniform();
                if u > 0.0 {
                    break u;
                }
            };
            return g * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal(0.0, 1.0);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = self.uniform();
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v * scale;
            }
            if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * scale;
            }
        }
    }

    /// Samples a log-normal variate: `exp(N(mu, sigma²))`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fills a slice with `N(mean, std²)` samples.
    pub fn fill_normal(&mut self, out: &mut [f32], mean: f64, std: f64) {
        for v in out {
            *v = self.normal(mean, std) as f32;
        }
    }

    /// Forks a child generator whose stream is decorrelated from the parent.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

/// Seed used by [`Rng::default`]; fixed so "default" runs are reproducible too.
pub const DEFAULT_SEED: u64 = 0x5EED_0011_7E00_2023;

impl Default for Rng {
    fn default() -> Self {
        Rng::seed_from(DEFAULT_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::seed_from(5);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_mean_and_std_are_close() {
        let mut r = Rng::seed_from(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {}", mean);
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn student_t_has_heavier_tails_than_normal() {
        let mut r = Rng::seed_from(11);
        let n = 20_000;
        let t_extremes = (0..n)
            .map(|_| r.student_t(3.0).abs())
            .filter(|&x| x > 4.0)
            .count();
        let g_extremes = (0..n)
            .map(|_| r.normal(0.0, 1.0).abs())
            .filter(|&x| x > 4.0)
            .count();
        assert!(t_extremes > g_extremes, "{} vs {}", t_extremes, g_extremes);
    }

    #[test]
    fn gamma_mean_matches_shape_times_scale() {
        let mut r = Rng::seed_from(13);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gamma(2.5, 1.5)).sum::<f64>() / n as f64;
        assert!((mean - 3.75).abs() < 0.15, "mean {}", mean);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::seed_from(17);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_u64_handles_huge_bounds_without_bias_collapse() {
        let mut r = Rng::seed_from(23);
        // n just above 2^63: 2^64 mod n = 2^63 - 1, so a plain `x % n`
        // implementation would emit values below 2^63 - 1 twice as often as
        // the rest (low:high ≈ 2:1). Rejection sampling stays 1:1.
        let n = (1u64 << 63) + 1;
        let draws = 2000;
        let (mut low, mut high) = (0u32, 0u32);
        for _ in 0..draws {
            let x = r.below_u64(n);
            assert!(x < n);
            if x < n / 2 {
                low += 1;
            } else {
                high += 1;
            }
        }
        // Under modulo bias low/high ≈ 1333/667; uniform gives ≈ 1000/1000.
        let ratio = low.max(high) as f64 / low.min(high) as f64;
        assert!(ratio < 1.2, "low {low}, high {high} (ratio {ratio:.2})");
    }

    #[test]
    fn below_u64_is_exact_for_tiny_bounds() {
        let mut r = Rng::seed_from(29);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[r.below_u64(3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_produces_decorrelated_stream() {
        let mut a = Rng::seed_from(19);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
