//! Area model for the OliVe decoders and PE array (paper Tbl. 10 and Tbl. 11).
//!
//! The decoder areas come from the paper's synthesis results (Synopsys DC,
//! TSMC 22 nm, scaled to 12 nm for the GPU integration with DeepScaleTool);
//! we treat those published numbers as calibration constants and reproduce the
//! bookkeeping on top of them, plus a generic technology-scaling helper.

/// Area of the 4-bit OVP decoder at 22 nm, in µm² (Tbl. 11).
pub const DECODER4_UM2_22NM: f64 = 37.22;
/// Area of the 8-bit OVP decoder at 22 nm, in µm² (Tbl. 11).
pub const DECODER8_UM2_22NM: f64 = 49.50;
/// Area of a 4-bit PE at 22 nm, in µm² (Tbl. 11).
pub const PE4_UM2_22NM: f64 = 50.01;
/// Area of the 4-bit OVP decoder at 12 nm, in µm² (Tbl. 10).
pub const DECODER4_UM2_12NM: f64 = 13.53;
/// Area of the 8-bit OVP decoder at 12 nm, in µm² (Tbl. 10).
pub const DECODER8_UM2_12NM: f64 = 18.00;
/// RTX 2080 Ti die area in mm² (Tbl. 10 uses 754 mm²).
pub const RTX_2080TI_DIE_MM2: f64 = 754.0;
/// Number of 4-bit decoders on the GPU (one per 16EDP lane, Tbl. 5/10).
pub const GPU_DECODER4_COUNT: usize = 139_264;
/// Number of 8-bit decoders on the GPU (one per 8EDP lane, Tbl. 5/10).
pub const GPU_DECODER8_COUNT: usize = 69_632;

/// DeepScaleTool-style area scaling between technology nodes: area scales
/// roughly with the square of the feature-size ratio.
pub fn scale_area(area: f64, from_nm: f64, to_nm: f64) -> f64 {
    assert!(from_nm > 0.0 && to_nm > 0.0, "nodes must be positive");
    area * (to_nm / from_nm).powi(2)
}

/// One row of an area table.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaRow {
    /// Component name.
    pub component: String,
    /// Unit area in µm².
    pub unit_area_um2: f64,
    /// Instance count.
    pub count: usize,
    /// Total area in mm².
    pub total_mm2: f64,
    /// Fraction of the reference area (GPU die or accelerator core).
    pub ratio: f64,
}

fn row(component: &str, unit_area_um2: f64, count: usize, reference_mm2: f64) -> AreaRow {
    let total_mm2 = unit_area_um2 * count as f64 / 1e6;
    AreaRow {
        component: component.to_string(),
        unit_area_um2,
        count,
        total_mm2,
        ratio: total_mm2 / reference_mm2,
    }
}

/// Reproduces Tbl. 10: the area of the OliVe decoders added to an RTX 2080 Ti.
pub fn gpu_decoder_area_table() -> Vec<AreaRow> {
    vec![
        row(
            "4-bit Decoder",
            DECODER4_UM2_12NM,
            GPU_DECODER4_COUNT,
            RTX_2080TI_DIE_MM2,
        ),
        row(
            "8-bit Decoder",
            DECODER8_UM2_12NM,
            GPU_DECODER8_COUNT,
            RTX_2080TI_DIE_MM2,
        ),
    ]
}

/// Reproduces Tbl. 11: the area breakdown of the OliVe systolic array
/// (64×64 4-bit PEs with border decoders) at 22 nm.
pub fn systolic_area_table(array_dim: usize) -> Vec<AreaRow> {
    let n_pe = array_dim * array_dim;
    let n_dec4 = 2 * array_dim; // one per row + one per column (Sec. 4.3)
    let n_dec8 = array_dim; // 8-bit decoders shared per PE quad column
    let core_mm2 = (DECODER4_UM2_22NM * n_dec4 as f64
        + DECODER8_UM2_22NM * n_dec8 as f64
        + PE4_UM2_22NM * n_pe as f64)
        / 1e6;
    vec![
        row("4-bit Decoder", DECODER4_UM2_22NM, n_dec4, core_mm2),
        row("8-bit Decoder", DECODER8_UM2_22NM, n_dec8, core_mm2),
        row("4-bit PE", PE4_UM2_22NM, n_pe, core_mm2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table10_totals_match_paper() {
        let rows = gpu_decoder_area_table();
        // Paper: 1.88 mm² (0.250%) and 1.25 mm² (0.166%).
        assert!(
            (rows[0].total_mm2 - 1.88).abs() < 0.03,
            "{}",
            rows[0].total_mm2
        );
        assert!(
            (rows[1].total_mm2 - 1.25).abs() < 0.03,
            "{}",
            rows[1].total_mm2
        );
        assert!((rows[0].ratio - 0.0025).abs() < 2e-4);
        assert!((rows[1].ratio - 0.00166).abs() < 2e-4);
    }

    #[test]
    fn table11_ratios_match_paper() {
        let rows = systolic_area_table(64);
        // Paper: 2.2%, 1.5%, 96.3% of the core area.
        assert!((rows[0].ratio - 0.022).abs() < 0.004, "{}", rows[0].ratio);
        assert!((rows[1].ratio - 0.015).abs() < 0.004, "{}", rows[1].ratio);
        assert!((rows[2].ratio - 0.963).abs() < 0.01, "{}", rows[2].ratio);
        assert_eq!(rows[2].count, 4096);
        assert_eq!(rows[0].count, 128);
        assert_eq!(rows[1].count, 64);
    }

    #[test]
    fn decoder_overhead_is_tiny_in_both_integrations() {
        for r in gpu_decoder_area_table() {
            assert!(r.ratio < 0.005, "{} ratio {}", r.component, r.ratio);
        }
        let acc = systolic_area_table(64);
        assert!(acc[0].ratio + acc[1].ratio < 0.05);
    }

    #[test]
    fn area_scaling_is_quadratic() {
        let a22 = 100.0;
        let a12 = scale_area(a22, 22.0, 12.0);
        assert!((a12 - 100.0 * (12.0f64 / 22.0).powi(2)).abs() < 1e-9);
        assert!(a12 < a22);
    }

    #[test]
    fn scaled_decoder_roughly_matches_published_12nm_value() {
        // Scaling the 22 nm decoder to 12 nm should land near the published
        // 12 nm number (the paper used DeepScaleTool; quadratic scaling is a
        // reasonable approximation).
        let scaled = scale_area(DECODER4_UM2_22NM, 22.0, 12.0);
        let rel = (scaled - DECODER4_UM2_12NM).abs() / DECODER4_UM2_12NM;
        assert!(
            rel < 0.35,
            "scaled {} vs published {}",
            scaled,
            DECODER4_UM2_12NM
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_area_rejects_zero_node() {
        let _ = scale_area(1.0, 0.0, 12.0);
    }
}
