//! Energy models for the GPU and systolic-array integrations.
//!
//! The paper's energy figures (Fig. 9b, Fig. 10b) decompose energy into
//! constant/static power, DRAM + L2 traffic, L1/register-file traffic (GPU) or
//! on-chip buffers (accelerator), and the compute cores. We reproduce that
//! decomposition with first-order per-access/per-operation energies; the
//! absolute joule numbers are not meaningful, but the ratios between schemes
//! (which are driven by datatype width, compute precision and traffic volume)
//! are.

use crate::designs::QuantScheme;

/// Energy breakdown in joules, matching the stacked-bar categories of
/// Fig. 9b / Fig. 10b.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Constant (idle) power × runtime.
    pub constant: f64,
    /// Static (leakage) power × runtime.
    pub static_: f64,
    /// DRAM plus L2 traffic energy.
    pub dram_l2: f64,
    /// L1/shared-memory/register (GPU) or on-chip buffer (accelerator) energy.
    pub l1_reg: f64,
    /// MAC/core energy.
    pub core: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.constant + self.static_ + self.dram_l2 + self.l1_reg + self.core
    }

    /// Component-wise scaling (useful for normalising).
    pub fn scaled(&self, f: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            constant: self.constant * f,
            static_: self.static_ * f,
            dram_l2: self.dram_l2 * f,
            l1_reg: self.l1_reg * f,
            core: self.core * f,
        }
    }
}

/// Per-access and per-operation energy constants (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// DRAM energy per byte.
    pub dram_pj_per_byte: f64,
    /// L2 energy per byte.
    pub l2_pj_per_byte: f64,
    /// L1/shared-memory/register or on-chip buffer energy per byte.
    pub l1_pj_per_byte: f64,
    /// Energy of one 8-bit integer MAC (other precisions scale from this).
    pub int8_mac_pj: f64,
    /// Constant (idle) power in watts.
    pub constant_power_w: f64,
    /// Static (leakage) power in watts.
    pub static_power_w: f64,
}

impl EnergyParams {
    /// GPU-class parameters (RTX 2080 Ti scale).
    pub fn gpu() -> Self {
        EnergyParams {
            dram_pj_per_byte: 160.0,
            l2_pj_per_byte: 30.0,
            l1_pj_per_byte: 12.0,
            int8_mac_pj: 0.25,
            constant_power_w: 25.0,
            static_power_w: 35.0,
        }
    }

    /// Standalone accelerator parameters (DnnWeaver-class ASIC, 22 nm).
    pub fn accelerator() -> Self {
        EnergyParams {
            dram_pj_per_byte: 160.0,
            l2_pj_per_byte: 0.0,
            l1_pj_per_byte: 6.0,
            int8_mac_pj: 0.2,
            constant_power_w: 0.5,
            static_power_w: 1.5,
        }
    }
}

/// Traffic and work counts of one run (summed over all GEMMs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunCounts {
    /// Total multiply-accumulate operations.
    pub macs: f64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: f64,
    /// Bytes moved through the L2 (GPU) — usually ≥ DRAM bytes.
    pub l2_bytes: f64,
    /// Bytes moved through L1/registers or on-chip buffers.
    pub l1_bytes: f64,
    /// Total runtime in seconds.
    pub runtime_s: f64,
}

/// Computes the energy breakdown of a run executed with `scheme`.
pub fn energy_of_run(
    params: &EnergyParams,
    scheme: &QuantScheme,
    counts: &RunCounts,
) -> EnergyBreakdown {
    let mac_energy_pj = params.int8_mac_pj * scheme.compute.mac_energy_factor()
        // The sparse-outlier path costs extra per outlier MAC (index lookup +
        // high-precision unit); charge it at 16-bit cost.
        + params.int8_mac_pj * 4.4 * scheme.outlier_mac_fraction;
    // OliVe's OVP decoders add a small per-value decode cost (Tbl. 10 shows the
    // area is ~0.25% of the die; energy is similarly negligible but non-zero).
    let decoder_pj = if scheme.ovp_decoder { 0.005 } else { 0.0 };

    EnergyBreakdown {
        constant: params.constant_power_w * counts.runtime_s,
        static_: params.static_power_w * counts.runtime_s,
        dram_l2: (counts.dram_bytes * params.dram_pj_per_byte
            + counts.l2_bytes * params.l2_pj_per_byte)
            * 1e-12,
        l1_reg: counts.l1_bytes * params.l1_pj_per_byte * 1e-12,
        core: counts.macs * (mac_energy_pj + decoder_pj) * 1e-12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> RunCounts {
        RunCounts {
            macs: 1e12,
            dram_bytes: 1e9,
            l2_bytes: 2e9,
            l1_bytes: 4e9,
            runtime_s: 1e-3,
        }
    }

    #[test]
    fn total_is_sum_of_components() {
        let b = energy_of_run(&EnergyParams::gpu(), &QuantScheme::olive4(), &counts());
        let sum = b.constant + b.static_ + b.dram_l2 + b.l1_reg + b.core;
        assert!((b.total() - sum).abs() < 1e-12);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn lower_precision_core_uses_less_energy() {
        let c = counts();
        let olive = energy_of_run(&EnergyParams::gpu(), &QuantScheme::olive4(), &c);
        let fp16 = energy_of_run(&EnergyParams::gpu(), &QuantScheme::fp16(), &c);
        assert!(olive.core < fp16.core);
    }

    #[test]
    fn outlier_path_increases_core_energy() {
        let c = counts();
        let olaccel = energy_of_run(&EnergyParams::accelerator(), &QuantScheme::olaccel(), &c);
        let olive = energy_of_run(&EnergyParams::accelerator(), &QuantScheme::olive4(), &c);
        assert!(olaccel.core > olive.core);
    }

    #[test]
    fn static_energy_scales_with_runtime() {
        let mut c = counts();
        let e1 = energy_of_run(&EnergyParams::gpu(), &QuantScheme::olive4(), &c);
        c.runtime_s *= 2.0;
        let e2 = energy_of_run(&EnergyParams::gpu(), &QuantScheme::olive4(), &c);
        assert!((e2.static_ - 2.0 * e1.static_).abs() < 1e-12);
        assert!((e2.constant - 2.0 * e1.constant).abs() < 1e-12);
    }

    #[test]
    fn scaled_divides_all_components() {
        let b = energy_of_run(&EnergyParams::gpu(), &QuantScheme::olive4(), &counts());
        let s = b.scaled(0.5);
        assert!((s.total() - 0.5 * b.total()).abs() < 1e-12);
    }
}
