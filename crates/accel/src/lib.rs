//! # olive-accel
//!
//! Performance, energy and area models for the OliVe architecture evaluation:
//!
//! * [`designs`] — architecture-facing descriptions of each quantization
//!   scheme (storage widths, compute precision, outlier-handling overheads).
//! * [`gpu`] — an analytical Turing-class GPU/tensor-core model (Fig. 9).
//! * [`systolic`] — a cycle-level output-stationary systolic-array model at
//!   iso-area (Fig. 10).
//! * [`energy`] — the shared energy decomposition (constant / static /
//!   DRAM+L2 / buffers+registers / core).
//! * [`area`] — decoder and PE area bookkeeping calibrated to Tbl. 10/11,
//!   plus technology scaling.

pub mod area;
pub mod designs;
pub mod energy;
pub mod gpu;
pub mod systolic;

pub use designs::{Precision, QuantScheme};
pub use energy::{EnergyBreakdown, EnergyParams, RunCounts};
pub use gpu::{geomean, GpuConfig, GpuRunResult, GpuSimulator};
pub use systolic::{SystolicConfig, SystolicRunResult, SystolicSimulator};
