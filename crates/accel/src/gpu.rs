//! Analytical GPU (tensor-core) performance model for the Fig. 9 comparison.
//!
//! The paper integrates OliVe into a Turing-class GPU (RTX 2080 Ti modelled in
//! GPGPU-Sim/AccelSim). The first-order behaviour of tensor-core GEMMs is a
//! roofline: each GEMM is either bound by the tensor-core math throughput at
//! its precision (107.6 / 215.2 / 430.3 TOPS for FP16 / int8 / int4) or by the
//! DRAM traffic of its operands at their storage width. GOBO additionally
//! computes in FP16 and only compresses weights at the DRAM level, which this
//! model reproduces.

use crate::designs::QuantScheme;
use crate::energy::{energy_of_run, EnergyBreakdown, EnergyParams, RunCounts};
use olive_models::workload::{GemmKind, Workload};

/// Turing-class GPU parameters (paper Tbl. 5 plus RTX 2080 Ti public specs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Tensor cores (8 per SM on Turing).
    pub tensor_cores: usize,
    /// FP16 tensor-core throughput in TOPS (MAC counted as 2 ops).
    pub fp16_tops: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// L2 bandwidth in GB/s (used only for traffic accounting).
    pub l2_bw_gbps: f64,
    /// Achievable fraction of peak (kernel efficiency).
    pub efficiency: f64,
}

impl GpuConfig {
    /// RTX 2080 Ti (Turing: 68 SMs, 544 tensor cores, 107.6 FP16 TOPS,
    /// 616 GB/s GDDR6).
    pub fn rtx_2080_ti() -> Self {
        GpuConfig {
            sms: 68,
            tensor_cores: 544,
            fp16_tops: 107.6,
            dram_bw_gbps: 616.0,
            l2_bw_gbps: 2000.0,
            efficiency: 0.75,
        }
    }

    /// Total 16-bit multiplier count (Sec. 4.1: 68 × 8 × 2 × 8 × 4 = 34,816).
    pub fn fp16_multipliers(&self) -> usize {
        self.sms * 8 * 2 * 8 * 4
    }
}

/// Result of simulating one model with one scheme on the GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuRunResult {
    /// Scheme name.
    pub scheme: String,
    /// Model name.
    pub model: String,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Fraction of GEMM time that was memory bound.
    pub memory_bound_fraction: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// The analytical GPU simulator.
#[derive(Debug, Clone)]
pub struct GpuSimulator {
    config: GpuConfig,
    energy_params: EnergyParams,
}

impl GpuSimulator {
    /// Creates a simulator for the given GPU.
    pub fn new(config: GpuConfig) -> Self {
        GpuSimulator {
            config,
            energy_params: EnergyParams::gpu(),
        }
    }

    /// Simulator with the paper's RTX 2080 Ti configuration.
    pub fn rtx_2080_ti() -> Self {
        Self::new(GpuConfig::rtx_2080_ti())
    }

    /// The GPU configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Simulates one workload (one forward pass) under a quantization scheme.
    pub fn run(&self, workload: &Workload, scheme: &QuantScheme) -> GpuRunResult {
        let peak_ops = self.config.fp16_tops * 1e12 * self.config.efficiency;
        let tput = peak_ops * scheme.gpu_throughput_multiplier();
        let dram_bw = self.config.dram_bw_gbps * 1e9;

        let mut latency = 0.0f64;
        let mut mem_bound_time = 0.0f64;
        let mut counts = RunCounts::default();

        for g in &workload.gemms {
            let ops = 2.0 * g.macs() as f64;
            let compute_s = ops / tput;

            // Operand bytes at their storage widths. GOBO only compresses
            // weights in DRAM; its activations and outputs stay FP16.
            let weight_bits = scheme.weight_storage_bits;
            let act_bits = scheme.act_storage_bits;
            let (a_bits, b_bits) = match g.kind {
                GemmKind::WeightActivation => (act_bits, weight_bits),
                GemmKind::ActivationActivation => (act_bits, act_bits),
            };
            let out_bits = act_bits;
            let dram_bytes = (g.a_elems() as f64 * a_bits
                + g.b_elems() as f64 * b_bits
                + g.c_elems() as f64 * out_bits)
                / 8.0;
            let memory_s = dram_bytes / dram_bw;

            let t = compute_s.max(memory_s);
            latency += t;
            if memory_s > compute_s {
                mem_bound_time += t;
            }

            // Traffic accounting for the energy model. On-chip traffic happens
            // at the on-chip width: FP16 for GOBO (DRAM-only compression),
            // the storage width otherwise.
            let onchip_factor = if scheme.dram_only_compression {
                16.0 / weight_bits
            } else {
                1.0
            };
            counts.macs += g.macs() as f64;
            counts.dram_bytes += dram_bytes;
            counts.l2_bytes += dram_bytes * onchip_factor;
            // Register/L1 traffic: every operand element is touched roughly
            // once per tile pass; approximate with 2× the L2 traffic.
            counts.l1_bytes += 2.0 * dram_bytes * onchip_factor;
        }
        counts.runtime_s = latency;

        GpuRunResult {
            scheme: scheme.name.clone(),
            model: workload.model.clone(),
            latency_s: latency,
            memory_bound_fraction: if latency > 0.0 {
                mem_bound_time / latency
            } else {
                0.0
            },
            energy: energy_of_run(&self.energy_params, scheme, &counts),
        }
    }

    /// Runs every scheme on one workload.
    pub fn compare(&self, workload: &Workload, schemes: &[QuantScheme]) -> Vec<GpuRunResult> {
        schemes.iter().map(|s| self.run(workload, s)).collect()
    }
}

/// Geometric mean helper used by the figure harnesses.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-300).ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use olive_models::ModelConfig;

    fn bert_workload() -> Workload {
        Workload::from_config(&ModelConfig::bert_base())
    }

    #[test]
    fn olive_is_faster_than_int8_and_gobo() {
        let sim = GpuSimulator::rtx_2080_ti();
        let wl = bert_workload();
        let olive = sim.run(&wl, &QuantScheme::olive4());
        let int8 = sim.run(&wl, &QuantScheme::int8_tensor_core());
        let gobo = sim.run(&wl, &QuantScheme::gobo());
        assert!(olive.latency_s < int8.latency_s);
        assert!(int8.latency_s < gobo.latency_s);
    }

    #[test]
    fn speedup_over_gobo_is_large() {
        // Paper Fig. 9a: OliVe achieves ~4.5x geomean speedup over GOBO.
        let sim = GpuSimulator::rtx_2080_ti();
        let mut speedups = Vec::new();
        for cfg in ModelConfig::performance_suite() {
            let wl = Workload::from_config(&cfg);
            let olive = sim.run(&wl, &QuantScheme::olive4());
            let gobo = sim.run(&wl, &QuantScheme::gobo());
            speedups.push(gobo.latency_s / olive.latency_s);
        }
        let g = geomean(&speedups);
        assert!(g > 2.5 && g < 8.0, "geomean speedup over GOBO = {}", g);
    }

    #[test]
    fn olive_energy_is_lowest() {
        let sim = GpuSimulator::rtx_2080_ti();
        let wl = bert_workload();
        let results = sim.compare(&wl, &QuantScheme::gpu_comparison_set());
        let olive = results[0].energy.total();
        for r in &results[1..] {
            assert!(
                olive < r.energy.total(),
                "{} uses less energy than OliVe",
                r.scheme
            );
        }
    }

    #[test]
    fn single_token_decode_is_more_memory_bound_than_batched_prefill() {
        let sim = GpuSimulator::rtx_2080_ti();
        let scheme = QuantScheme::fp16();
        let prefill = sim.run(&Workload::from_config(&ModelConfig::bloom_7b1()), &scheme);
        let decode = sim.run(
            &Workload::with_batch_and_seq(&ModelConfig::bloom_7b1(), 1, 1),
            &scheme,
        );
        assert!(decode.memory_bound_fraction > prefill.memory_bound_fraction);
        assert!(decode.memory_bound_fraction > 0.9);
        assert!((0.0..=1.0).contains(&prefill.memory_bound_fraction));
    }

    #[test]
    fn latency_scales_with_model_size() {
        let sim = GpuSimulator::rtx_2080_ti();
        let s = QuantScheme::olive4();
        let base = sim.run(&Workload::from_config(&ModelConfig::bert_base()), &s);
        let large = sim.run(&Workload::from_config(&ModelConfig::bert_large()), &s);
        assert!(large.latency_s > base.latency_s);
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn multiplier_count_matches_paper() {
        assert_eq!(GpuConfig::rtx_2080_ti().fp16_multipliers(), 34_816);
    }
}
