//! Cycle-level output-stationary systolic-array model for the Fig. 10
//! comparison.
//!
//! The paper integrates OliVe into a DnnWeaver-derived accelerator with a
//! 64×64 array of 4-bit PEs (Tbl. 11) plus border OVP decoders. All compared
//! designs are implemented at *similar area*, so each scheme's PE width and
//! controller overhead translate into a smaller or larger effective array.
//! GEMMs execute as output-stationary tiles: a tile of `rows × cols` outputs
//! is filled, `K` partial sums stream through, and the tile drains — with
//! double-buffered operand fetch overlapping DRAM traffic.

use crate::designs::{Precision, QuantScheme};
use crate::energy::{energy_of_run, EnergyBreakdown, EnergyParams, RunCounts};
use olive_models::workload::{GemmKind, Workload};

/// Configuration of the systolic-array accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystolicConfig {
    /// Area budget expressed in 4-bit-PE equivalents (Tbl. 11: 4096).
    pub pe_area_budget: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Throughput of the sparse-outlier side path in MACs/cycle (OLAccel/GOBO
    /// style designs only).
    pub outlier_path_macs_per_cycle: f64,
    /// Average on-chip reuse: how many times each fetched byte is touched in
    /// the buffers (drives buffer energy, not performance).
    pub buffer_reuse: f64,
}

impl SystolicConfig {
    /// The paper's configuration: 64×64 4-bit PEs at 22 nm.
    pub fn paper_64x64() -> Self {
        SystolicConfig {
            pe_area_budget: 4096,
            freq_mhz: 500.0,
            dram_bw_gbps: 64.0,
            outlier_path_macs_per_cycle: 128.0,
            buffer_reuse: 3.0,
        }
    }
}

/// Result of simulating one model with one scheme on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicRunResult {
    /// Scheme name.
    pub scheme: String,
    /// Model name.
    pub model: String,
    /// Total cycles.
    pub cycles: f64,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Effective array dimension used for the 4-bit path (rows = cols).
    pub array_dim: usize,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

/// The cycle-level systolic-array simulator.
#[derive(Debug, Clone)]
pub struct SystolicSimulator {
    config: SystolicConfig,
    energy_params: EnergyParams,
}

impl SystolicSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SystolicConfig) -> Self {
        SystolicSimulator {
            config,
            energy_params: EnergyParams::accelerator(),
        }
    }

    /// Simulator with the paper's 64×64 configuration.
    pub fn paper_default() -> Self {
        Self::new(SystolicConfig::paper_64x64())
    }

    /// The configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// Effective square array dimension for a scheme at iso-area.
    pub fn array_dim(&self, scheme: &QuantScheme) -> usize {
        let per_pe_cost =
            scheme.compute.pe_area_factor() * (1.0 + scheme.outlier_controller_area_overhead);
        let pes = (self.config.pe_area_budget as f64 / per_pe_cost).max(1.0);
        (pes.sqrt().floor() as usize).max(1)
    }

    /// Cycles to execute one GEMM as output-stationary tiles on a `dim × dim`
    /// array. When `quad_pe` is set, four PEs gang up per MAC (8-bit values on
    /// 4-bit PEs, paper Sec. 4.5), halving the effective array in each
    /// dimension.
    fn gemm_cycles(&self, m: usize, n: usize, k: usize, dim: usize, quad_pe: bool) -> f64 {
        let eff = if quad_pe { (dim / 2).max(1) } else { dim };
        let tiles_m = m.div_ceil(eff);
        let tiles_n = n.div_ceil(eff);
        let fill_drain = 2 * eff;
        (tiles_m * tiles_n) as f64 * (k + fill_drain) as f64
    }

    /// Simulates one workload under a quantization scheme.
    pub fn run(&self, workload: &Workload, scheme: &QuantScheme) -> SystolicRunResult {
        let dim = self.array_dim(scheme);
        let bytes_per_cycle = self.config.dram_bw_gbps * 1e9 / (self.config.freq_mhz * 1e6);
        // Does the scheme's 8-bit work run on ganged 4-bit PEs (OliVe, ANT) or
        // on natively wider PEs (AdaFloat / int8 designs)?
        let native_wide_pes = scheme.compute != Precision::Int4;
        let f8 = scheme.int8_layer_fraction.clamp(0.0, 1.0);

        let mut total_cycles = 0.0f64;
        let mut counts = RunCounts::default();

        for g in &workload.gemms {
            let cycles_narrow = self.gemm_cycles(g.m, g.n, g.k, dim, false);
            let cycles_wide = if native_wide_pes {
                cycles_narrow
            } else {
                self.gemm_cycles(g.m, g.n, g.k, dim, true)
            };
            let mut compute_cycles = (1.0 - f8) * cycles_narrow + f8 * cycles_wide;
            // Sparse outlier side path (coordinate-list designs) serialises a
            // fraction of the MACs through a narrow unit.
            if scheme.outlier_mac_fraction > 0.0 {
                compute_cycles += g.macs() as f64 * scheme.outlier_mac_fraction
                    / self.config.outlier_path_macs_per_cycle;
            }

            let (a_bits, b_bits) = match g.kind {
                GemmKind::WeightActivation => (scheme.act_storage_bits, scheme.weight_storage_bits),
                GemmKind::ActivationActivation => {
                    (scheme.act_storage_bits, scheme.act_storage_bits)
                }
            };
            let dram_bytes = (g.a_elems() as f64 * a_bits
                + g.b_elems() as f64 * b_bits
                + g.c_elems() as f64 * scheme.act_storage_bits)
                / 8.0;
            let memory_cycles = dram_bytes / bytes_per_cycle;

            total_cycles += compute_cycles.max(memory_cycles);
            counts.macs += g.macs() as f64;
            counts.dram_bytes += dram_bytes;
            counts.l1_bytes += dram_bytes * self.config.buffer_reuse;
        }

        let latency_s = total_cycles / (self.config.freq_mhz * 1e6);
        counts.runtime_s = latency_s;
        SystolicRunResult {
            scheme: scheme.name.clone(),
            model: workload.model.clone(),
            cycles: total_cycles,
            latency_s,
            array_dim: dim,
            energy: energy_of_run(&self.energy_params, scheme, &counts),
        }
    }

    /// Runs every scheme on one workload.
    pub fn compare(&self, workload: &Workload, schemes: &[QuantScheme]) -> Vec<SystolicRunResult> {
        schemes.iter().map(|s| self.run(workload, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::geomean;
    use olive_models::ModelConfig;

    #[test]
    fn olive_array_is_64x64_and_adafloat_is_smaller() {
        let sim = SystolicSimulator::paper_default();
        assert_eq!(sim.array_dim(&QuantScheme::olive4()), 64);
        assert!(sim.array_dim(&QuantScheme::adafloat()) < 40);
        assert!(sim.array_dim(&QuantScheme::olaccel()) < 64);
    }

    #[test]
    fn olive_is_fastest_of_the_fig10_set() {
        let sim = SystolicSimulator::paper_default();
        let wl = Workload::from_config(&ModelConfig::bert_base());
        let results = sim.compare(&wl, &QuantScheme::accelerator_comparison_set());
        let olive = results[0].latency_s;
        for r in &results[1..] {
            assert!(olive < r.latency_s, "{} is faster than OliVe", r.scheme);
        }
    }

    #[test]
    fn speedup_over_adafloat_is_in_the_paper_ballpark() {
        // Paper Fig. 10a: OliVe ≈ 4.8x over AdaFloat (geomean).
        let sim = SystolicSimulator::paper_default();
        let mut speedups = Vec::new();
        for cfg in ModelConfig::performance_suite() {
            let wl = Workload::from_config(&cfg);
            let olive = sim.run(&wl, &QuantScheme::olive4());
            let ada = sim.run(&wl, &QuantScheme::adafloat());
            speedups.push(ada.latency_s / olive.latency_s);
        }
        let g = geomean(&speedups);
        assert!(g > 2.0 && g < 8.0, "geomean speedup over AdaFloat = {}", g);
    }

    #[test]
    fn olive_energy_is_lowest() {
        let sim = SystolicSimulator::paper_default();
        let wl = Workload::from_config(&ModelConfig::bart_base());
        let results = sim.compare(&wl, &QuantScheme::accelerator_comparison_set());
        let olive = results[0].energy.total();
        for r in &results[1..] {
            assert!(
                olive < r.energy.total(),
                "{} beats OliVe on energy",
                r.scheme
            );
        }
    }

    #[test]
    fn cycles_grow_with_gemm_size() {
        let sim = SystolicSimulator::paper_default();
        let small = sim.gemm_cycles(128, 128, 128, 64, false);
        let big = sim.gemm_cycles(256, 256, 256, 64, false);
        assert!(big > 4.0 * small);
    }

    #[test]
    fn quad_pe_mode_is_slower() {
        let sim = SystolicSimulator::paper_default();
        let narrow = sim.gemm_cycles(512, 512, 512, 64, false);
        let wide = sim.gemm_cycles(512, 512, 512, 64, true);
        assert!(wide > 2.0 * narrow);
    }

    #[test]
    fn memory_bound_gemms_are_limited_by_bandwidth() {
        // A skinny GEMM (GEMV-like) should be memory bound: halving the data
        // width should roughly halve its time under OliVe vs an 8-bit scheme.
        let sim = SystolicSimulator::paper_default();
        let wl = Workload::with_batch_and_seq(&ModelConfig::opt_6_7b(), 1, 1);
        let olive = sim.run(&wl, &QuantScheme::olive4());
        let int8ish = sim.run(&wl, &QuantScheme::adafloat());
        let ratio = int8ish.latency_s / olive.latency_s;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio {}", ratio);
    }
}
