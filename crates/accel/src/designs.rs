//! Accelerator-level descriptions of each quantization scheme.
//!
//! The performance and energy models do not re-run the numerics — they only
//! need to know, for each scheme, how wide its storage is, what precision its
//! arithmetic runs at, and which architectural quirks it drags along (GOBO's
//! DRAM-only compression, OLAccel's sparse outlier path, ANT's int8 fallback
//! mix). This module captures those properties per design, with constructors
//! matching the configurations compared in Fig. 9 and Fig. 10.

/// Arithmetic precision of the MAC datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit floating point.
    Fp32,
    /// 16-bit floating point (CUDA core / tensor core FP16).
    Fp16,
    /// 8-bit integer.
    Int8,
    /// 4-bit integer (including the OVP exponent-integer datapath).
    Int4,
}

impl Precision {
    /// Relative MAC throughput versus FP16 on a Turing-class tensor core
    /// (107.6 / 215.2 / 430.3 TOPS, paper Sec. 4.1).
    pub fn tensor_core_speedup(self) -> f64 {
        match self {
            Precision::Fp32 => 0.5,
            Precision::Fp16 => 1.0,
            Precision::Int8 => 2.0,
            Precision::Int4 => 4.0,
        }
    }

    /// Storage bits of one operand at this precision.
    pub fn bits(self) -> f64 {
        match self {
            Precision::Fp32 => 32.0,
            Precision::Fp16 => 16.0,
            Precision::Int8 => 8.0,
            Precision::Int4 => 4.0,
        }
    }

    /// Relative MAC energy versus an 8-bit integer MAC (approximate scaling
    /// from published per-operation energy tables: energy grows roughly
    /// quadratically with operand width, floats pay an extra factor).
    pub fn mac_energy_factor(self) -> f64 {
        match self {
            Precision::Fp32 => 16.0,
            Precision::Fp16 => 4.4,
            Precision::Int8 => 1.0,
            Precision::Int4 => 0.3,
        }
    }

    /// Relative PE area versus a 4-bit integer PE (used for iso-area scaling
    /// of the systolic-array designs).
    pub fn pe_area_factor(self) -> f64 {
        match self {
            Precision::Fp32 => 18.0,
            Precision::Fp16 => 6.0,
            Precision::Int8 => 3.4,
            Precision::Int4 => 1.0,
        }
    }
}

/// Architecture-facing description of one quantization scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantScheme {
    /// Display name used in the figures.
    pub name: String,
    /// Average storage bits per weight element (DRAM/cache footprint).
    pub weight_storage_bits: f64,
    /// Average storage bits per activation element.
    pub act_storage_bits: f64,
    /// Precision of the low-precision datapath.
    pub compute: Precision,
    /// Fraction of GEMMs that fall back to 8-bit arithmetic (ANT's PTQ mixed
    /// precision; 0.0 for pure 4-bit schemes, 1.0 for 8-bit schemes).
    pub int8_layer_fraction: f64,
    /// GOBO's restriction: weights are only compressed in DRAM; on-chip
    /// storage and compute stay FP16.
    pub dram_only_compression: bool,
    /// Fraction of MACs routed through a sparse outlier path with dedicated
    /// (slower, index-driven) handling — OLAccel/GOBO-style coordinate lists.
    pub outlier_mac_fraction: f64,
    /// Additional PE-array area overhead of the outlier controller (paper
    /// Sec. 2.2: 55% for GOBO, 71% for OLAccel), which costs throughput at
    /// iso-area.
    pub outlier_controller_area_overhead: f64,
    /// Per-value decode overhead area of OliVe's OVP decoders (tiny; Tbl. 10).
    pub ovp_decoder: bool,
}

impl QuantScheme {
    /// OliVe with 4-bit weights and activations (the paper's headline design).
    pub fn olive4() -> Self {
        QuantScheme {
            name: "OliVe".into(),
            weight_storage_bits: 4.0,
            act_storage_bits: 4.0,
            compute: Precision::Int4,
            int8_layer_fraction: 0.0,
            dram_only_compression: false,
            outlier_mac_fraction: 0.0,
            outlier_controller_area_overhead: 0.0,
            ovp_decoder: true,
        }
    }

    /// OliVe with 8-bit weights and activations.
    pub fn olive8() -> Self {
        QuantScheme {
            name: "OliVe-8bit".into(),
            weight_storage_bits: 8.0,
            act_storage_bits: 8.0,
            compute: Precision::Int8,
            int8_layer_fraction: 1.0,
            dram_only_compression: false,
            outlier_mac_fraction: 0.0,
            outlier_controller_area_overhead: 0.0,
            ovp_decoder: true,
        }
    }

    /// ANT under PTQ mixed precision: nominally 4-bit but ~80% of layers fall
    /// back to int8 because ANT has no outlier mechanism (paper Sec. 5.3).
    pub fn ant_mixed() -> Self {
        let int8_fraction = 0.8;
        QuantScheme {
            name: "ANT".into(),
            weight_storage_bits: 4.0 * (1.0 - int8_fraction) + 8.0 * int8_fraction,
            act_storage_bits: 4.0 * (1.0 - int8_fraction) + 8.0 * int8_fraction,
            compute: Precision::Int4,
            int8_layer_fraction: int8_fraction,
            dram_only_compression: false,
            outlier_mac_fraction: 0.0,
            outlier_controller_area_overhead: 0.0,
            ovp_decoder: false,
        }
    }

    /// The GPU's native int8 tensor-core path (accuracy is unacceptable on
    /// LLMs, included as a performance reference — paper Sec. 5.3).
    pub fn int8_tensor_core() -> Self {
        QuantScheme {
            name: "INT8".into(),
            weight_storage_bits: 8.0,
            act_storage_bits: 8.0,
            compute: Precision::Int8,
            int8_layer_fraction: 1.0,
            dram_only_compression: false,
            outlier_mac_fraction: 0.0,
            outlier_controller_area_overhead: 0.0,
            ovp_decoder: false,
        }
    }

    /// GOBO: 3-bit weight centroids + FP32 outliers, but only in DRAM; on-chip
    /// data and all arithmetic stay FP16, activations are not quantized.
    pub fn gobo() -> Self {
        QuantScheme {
            name: "GOBO".into(),
            weight_storage_bits: 4.0, // 3-bit centroids + outlier payload/index overhead
            act_storage_bits: 16.0,
            compute: Precision::Fp16,
            int8_layer_fraction: 0.0,
            dram_only_compression: true,
            outlier_mac_fraction: 0.001,
            outlier_controller_area_overhead: 0.55,
            ovp_decoder: false,
        }
    }

    /// OLAccel: dense 4-bit values plus a sparse 16-bit outlier path driven by
    /// a coordinate list.
    pub fn olaccel() -> Self {
        QuantScheme {
            name: "OLAccel".into(),
            weight_storage_bits: 4.0 + 0.03 * 48.0,
            act_storage_bits: 4.0 + 0.03 * 48.0,
            compute: Precision::Int4,
            int8_layer_fraction: 0.0,
            dram_only_compression: false,
            outlier_mac_fraction: 0.03,
            outlier_controller_area_overhead: 0.71,
            ovp_decoder: false,
        }
    }

    /// AdaptivFloat at 8 bits (no mixed-precision support).
    pub fn adafloat() -> Self {
        QuantScheme {
            name: "AdaFloat".into(),
            weight_storage_bits: 8.0,
            act_storage_bits: 8.0,
            compute: Precision::Int8,
            int8_layer_fraction: 1.0,
            dram_only_compression: false,
            outlier_mac_fraction: 0.0,
            outlier_controller_area_overhead: 0.0,
            ovp_decoder: false,
        }
    }

    /// Uncompressed FP16 execution (reference point).
    pub fn fp16() -> Self {
        QuantScheme {
            name: "FP16".into(),
            weight_storage_bits: 16.0,
            act_storage_bits: 16.0,
            compute: Precision::Fp16,
            int8_layer_fraction: 0.0,
            dram_only_compression: false,
            outlier_mac_fraction: 0.0,
            outlier_controller_area_overhead: 0.0,
            ovp_decoder: false,
        }
    }

    /// The GPU comparison set of Fig. 9, in plotting order.
    pub fn gpu_comparison_set() -> Vec<QuantScheme> {
        vec![
            Self::olive4(),
            Self::ant_mixed(),
            Self::int8_tensor_core(),
            Self::gobo(),
        ]
    }

    /// The accelerator comparison set of Fig. 10, in plotting order.
    pub fn accelerator_comparison_set() -> Vec<QuantScheme> {
        vec![
            Self::olive4(),
            Self::ant_mixed(),
            Self::olaccel(),
            Self::adafloat(),
        ]
    }

    /// Effective tensor-core throughput multiplier versus FP16, accounting for
    /// the int8 fallback fraction.
    pub fn gpu_throughput_multiplier(&self) -> f64 {
        let base = self.compute.tensor_core_speedup();
        if self.int8_layer_fraction <= 0.0 {
            return base;
        }
        let int8 = Precision::Int8.tensor_core_speedup();
        let frac = self.int8_layer_fraction.clamp(0.0, 1.0);
        // Layers execute sequentially: combine as a harmonic mixture.
        1.0 / (frac / int8 + (1.0 - frac) / base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_ratios_match_turing_spec() {
        assert_eq!(Precision::Int8.tensor_core_speedup(), 2.0);
        assert_eq!(Precision::Int4.tensor_core_speedup(), 4.0);
        assert_eq!(Precision::Fp16.bits(), 16.0);
    }

    #[test]
    fn olive_is_pure_4bit() {
        let o = QuantScheme::olive4();
        assert_eq!(o.weight_storage_bits, 4.0);
        assert_eq!(o.gpu_throughput_multiplier(), 4.0);
        assert!(o.ovp_decoder);
    }

    #[test]
    fn ant_mixture_sits_between_int8_and_int4() {
        let a = QuantScheme::ant_mixed();
        let m = a.gpu_throughput_multiplier();
        assert!(m > 2.0 && m < 4.0, "multiplier {}", m);
        assert!(a.weight_storage_bits > 4.0 && a.weight_storage_bits < 8.0);
    }

    #[test]
    fn gobo_computes_fp16_and_keeps_fp16_activations() {
        let g = QuantScheme::gobo();
        assert_eq!(g.compute, Precision::Fp16);
        assert_eq!(g.act_storage_bits, 16.0);
        assert!(g.dram_only_compression);
    }

    #[test]
    fn olaccel_pays_for_outliers() {
        let o = QuantScheme::olaccel();
        assert!(o.outlier_mac_fraction > 0.0);
        assert!(o.outlier_controller_area_overhead > 0.5);
        assert!(o.weight_storage_bits > 4.0);
    }

    #[test]
    fn comparison_sets_have_paper_order() {
        let gpu = QuantScheme::gpu_comparison_set();
        assert_eq!(gpu.len(), 4);
        assert_eq!(gpu[0].name, "OliVe");
        assert_eq!(gpu[3].name, "GOBO");
        let acc = QuantScheme::accelerator_comparison_set();
        assert_eq!(acc[3].name, "AdaFloat");
    }

    #[test]
    fn energy_and_area_factors_are_monotone_in_width() {
        assert!(Precision::Int4.mac_energy_factor() < Precision::Int8.mac_energy_factor());
        assert!(Precision::Int8.mac_energy_factor() < Precision::Fp16.mac_energy_factor());
        assert!(Precision::Int4.pe_area_factor() < Precision::Int8.pe_area_factor());
    }
}
