#!/usr/bin/env bash
# Serving smoke test for the OliVe reproduction workspace.
#
# Two layers, both using only what the repo ships (no curl needed):
#
#  1. The process-level smoke *test* (crates/serve/tests/smoke.rs): spawns
#     the real `olive-serve` binary on an ephemeral port, drives /healthz,
#     /v1/eval and a streamed /v1/generate (on a kept-alive connection) with
#     the std-only client library, asserts 200s with valid JSON, and
#     verifies a clean POST /shutdown exit triggered on that same still-open
#     connection (clean shutdown mid-keep-alive).
#  2. A shell-driven rehearsal of the same flow with the `serve_client`
#     binary — proving the daemon + CLI client work exactly as the README
#     documents them, outside any cargo test harness. The /v1/generate step
#     drives one real chunked stream through the daemon. The rehearsal runs
#     with --trace-log and finishes by scraping /metrics and /debug/trace:
#     the served requests must show up as counters, spans and trace-log
#     lines.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo test --release -p olive-serve --test smoke =="
cargo test --release -q -p olive-serve --test smoke

echo "== daemon + serve_client rehearsal =="
cargo build --release -q -p olive-serve

OUT="$(mktemp)"
TRACE_LOG="$(mktemp)"
SERVER_PID=""
# On ANY exit (incl. a failed client step under set -e): never leave the
# daemon orphaned. The happy path disarms the kill by clearing SERVER_PID.
trap '[[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null; rm -f "$OUT" "$TRACE_LOG"' EXIT
target/release/olive-serve --port 0 --allow-shutdown --trace-log "$TRACE_LOG" >"$OUT" &
SERVER_PID=$!

# Wait (max ~5s) for the listening line, then scrape the URL.
URL=""
for _ in $(seq 1 50); do
    URL="$(sed -n 's/^olive-serve listening on //p' "$OUT")"
    [[ -n "$URL" ]] && break
    sleep 0.1
done
if [[ -z "$URL" ]]; then
    echo "serve_smoke: server did not print its URL" >&2
    exit 1
fi
echo "server is at $URL"

# serve_client exits non-zero unless the status is 200 AND the body parses
# as JSON.
target/release/serve_client GET "$URL/healthz" >/dev/null
target/release/serve_client POST "$URL/v1/eval" \
    --body '{"scheme": "olive-4bit", "batches": 2, "oversample": 2}' >/dev/null
# One real streamed generation: the client decodes the chunked transfer
# coding and still requires the concatenated body to parse as JSON.
target/release/serve_client POST "$URL/v1/generate" \
    --body '{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 6}' >/dev/null

# The traffic above must be visible in the observability surface: request
# counters on /metrics (Prometheus text, so --no-json), finished spans on
# /debug/trace, and one JSON line per span in the --trace-log file.
METRICS="$(target/release/serve_client GET "$URL/metrics" --no-json)"
for want in \
    'olive_http_requests_total{endpoint="/healthz",status="2xx"} 1' \
    'olive_http_requests_total{endpoint="/v1/eval",status="2xx"} 1' \
    'olive_http_requests_total{endpoint="/v1/generate",status="2xx"} 1' \
    'olive_batch_jobs_served_total 1' \
    'olive_decode_streams_served_total 1'
do
    if ! grep -qF "$want" <<<"$METRICS"; then
        echo "serve_smoke: /metrics is missing '$want'" >&2
        echo "$METRICS" >&2
        exit 1
    fi
done
TRACES="$(target/release/serve_client GET "$URL/debug/trace?n=8")"
for stage in accepted queued batched first-byte done; do
    if ! grep -qF "\"stage\":\"$stage\"" <<<"$TRACES"; then
        echo "serve_smoke: /debug/trace is missing stage '$stage': $TRACES" >&2
        exit 1
    fi
done
if ! grep -qF '"endpoint":"/v1/generate"' "$TRACE_LOG"; then
    echo "serve_smoke: --trace-log did not record the generate span" >&2
    cat "$TRACE_LOG" >&2
    exit 1
fi
echo "metrics, traces and the trace log all saw the traffic"

target/release/serve_client POST "$URL/shutdown" >/dev/null

# The daemon must exit 0 on its own after /shutdown.
DAEMON_PID="$SERVER_PID"
SERVER_PID=""  # disarm the kill-on-exit trap; from here the daemon owns its exit
if ! wait "$DAEMON_PID"; then
    echo "serve_smoke: server did not shut down cleanly" >&2
    exit 1
fi
echo "serve_smoke: OK"
