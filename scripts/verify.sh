#!/usr/bin/env bash
# Tier-1 verification gate for the OliVe reproduction workspace.
#
# Runs entirely offline (the workspace has zero crates.io dependencies; see
# README.md). Exits non-zero if the build, the test suite, doc tests, or
# lints fail.
#
# Lint-tool availability: locally a missing clippy/rustfmt is soft-skipped so
# minimal toolchains can still verify; in CI (the CI env variable is set, as
# GitHub Actions does) a missing lint tool is a hard failure so lint rot
# cannot land through a stripped runner image.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release =="
cargo build --workspace --release

# The examples are the public face of the `olive::api` surface; build them
# all so the API cannot silently rot (CI additionally *runs* quickstart).
echo "== cargo build --release --examples =="
cargo build --release --examples

echo "== cargo test --workspace -q =="
cargo test --workspace -q

# The quantized GEMM has SIMD and scalar kernels that must be bit-identical;
# the workspace run above exercises the auto-detected path, this run pins the
# scalar fallback so both dispatch targets are tested on every verify.
echo "== OLIVE_SIMD=scalar cargo test -q -p olive-core =="
OLIVE_SIMD=scalar cargo test -q -p olive-core

# Static analysis: the determinism & concurrency contracts (see
# crates/lint/RULES.md). The self-test proves the rules still bite by
# injecting one violation per rule.
echo "== olive-lint =="
cargo run --release -q -p olive-lint -- --root .
echo "== olive-lint --self-test =="
cargo run --release -q -p olive-lint -- --self-test

# `cargo test` alone skips doc tests unevenly: the harness=false bench
# targets are test targets too, and lib doc tests are easy to lose in the
# noise. Run them explicitly so documented examples stay honest.
echo "== cargo test --workspace --doc -q =="
cargo test --workspace --doc -q

# Serving smoke: the olive-serve daemon must come up, answer /healthz and
# /v1/eval with valid JSON via the std-only client, and shut down cleanly.
echo "== scripts/serve_smoke.sh =="
scripts/serve_smoke.sh

# Scale-out smoke: olive-prepare snapshots verify byte-exact with a real
# cold-start speedup, and a 3-worker olive-router topology serves bytes
# identical to a single worker — including across a kill -9 of one worker.
echo "== scripts/router_smoke.sh =="
scripts/router_smoke.sh

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets -- -D warnings =="
    cargo clippy --workspace --all-targets -- -D warnings
elif [[ -n "${CI:-}" ]]; then
    echo "== clippy unavailable in CI: failing =="
    exit 1
else
    echo "== clippy unavailable; skipped (hard failure in CI) =="
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --all -- --check =="
    cargo fmt --all -- --check
elif [[ -n "${CI:-}" ]]; then
    echo "== rustfmt unavailable in CI: failing =="
    exit 1
else
    echo "== rustfmt unavailable; skipped (hard failure in CI) =="
fi

echo "verify: OK"
