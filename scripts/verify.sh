#!/usr/bin/env bash
# Tier-1 verification gate for the OliVe reproduction workspace.
#
# Runs entirely offline (the workspace has zero crates.io dependencies; see
# README.md). Exits non-zero if the build, the test suite, or lints fail.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace -q =="
cargo test --workspace -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets -- -D warnings =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy unavailable; skipped =="
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --all -- --check =="
    cargo fmt --all -- --check
else
    echo "== rustfmt unavailable; skipped =="
fi

echo "verify: OK"
