#!/usr/bin/env bash
# Bench-regression gate for the OliVe reproduction workspace.
#
# Runs the three micro-benchmarks (encoding, quantized_gemm, simulators) in
# --quick mode plus the serve_loadgen serving-throughput benchmark and the
# gen_loadgen streamed-decode benchmark (tokens/sec p50 single-stream, and
# the serve/gen_continuous_tiny 8-stream continuous-batching burst), merges
# their per-kernel medians into BENCH_results.json, and fails if any kernel
# regressed more than the tolerance (default 25%) versus the checked-in
# BENCH_baseline.json.
#
# Usage:
#   scripts/bench_gate.sh               # measure + compare against baseline
#   scripts/bench_gate.sh --rebaseline  # measure + overwrite the baseline
#   scripts/bench_gate.sh --self-test   # prove the gate fails on a 2x slowdown
#
# Environment:
#   GATE_TOLERANCE_PCT   allowed regression percentage      (default 25)
#   GATE_SAMPLES         timed iterations per kernel        (default 25)
#   GATE_WARMUP          warmup iterations per kernel       (default 3)
#   OLIVE_THREADS        thread count for the *_par kernels (default: all cores)
#
# Flakiness policy: wall-clock medians on shared hardware jitter, so a failed
# comparison is retried once with freshly measured results — a regression
# must reproduce in two consecutive runs to fail the gate. A real slowdown
# (the --self-test injects 2x) fails both times.
#
# Re-baselining: medians are wall times on the machine that ran the script,
# so the baseline must be regenerated (--rebaseline, then commit the new
# BENCH_baseline.json) whenever the benchmark set changes, a kernel is
# intentionally made slower/faster, or CI moves to different hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-check}"
BASELINE=BENCH_baseline.json
# Absolute path: cargo runs bench binaries with the package directory
# (crates/bench) as their working directory.
RESULTS="$PWD/BENCH_results.json"
TOLERANCE="${GATE_TOLERANCE_PCT:-25}"

# More samples than the plain --quick smoke run: the gate compares medians,
# so it buys a little extra noise immunity.
export OLIVE_BENCH_SAMPLES="${GATE_SAMPLES:-25}"
export OLIVE_BENCH_WARMUP="${GATE_WARMUP:-3}"

measure() {
    rm -f "$RESULTS"
    for bench in encoding quantized_gemm simulators; do
        echo "== cargo bench -p olive-bench --bench $bench -- --quick --json $RESULTS =="
        cargo bench -q -p olive-bench --bench "$bench" -- --quick --json "$RESULTS"
    done
    echo "== cargo run --release -p olive-bench --bin serve_loadgen -- --quick --json $RESULTS =="
    cargo run -q --release -p olive-bench --bin serve_loadgen -- --quick --json "$RESULTS"
    echo "== cargo run --release -p olive-bench --bin gen_loadgen -- --quick --json $RESULTS =="
    cargo run -q --release -p olive-bench --bin gen_loadgen -- --quick --json "$RESULTS"
}

# --self-test only compares a results file against itself, so it reuses the
# measurements of a preceding check/rebaseline run when they exist.
if [[ "$MODE" == --self-test && -f "$RESULTS" ]]; then
    echo "bench_gate: reusing existing $RESULTS for the self-test"
else
    measure
fi

case "$MODE" in
--rebaseline)
    cp "$RESULTS" "$BASELINE"
    echo "bench_gate: baseline rewritten at $BASELINE — review and commit it"
    ;;
--self-test)
    # The gate must demonstrably fail when a synthetic 2x slowdown is
    # injected into an otherwise-clean run compared against itself.
    cargo run -q --release -p olive-bench --bin bench_gate -- \
        "$RESULTS" "$RESULTS" --tolerance-pct "$TOLERANCE"
    if cargo run -q --release -p olive-bench --bin bench_gate -- \
        "$RESULTS" "$RESULTS" --tolerance-pct "$TOLERANCE" --inject-slowdown 2.0; then
        echo "bench_gate: self-test FAILED — a 2x slowdown passed the gate"
        exit 1
    fi
    echo "bench_gate: self-test OK — clean run passes, 2x slowdown fails"
    ;;
check)
    if [[ ! -f "$BASELINE" ]]; then
        echo "bench_gate: no $BASELINE found — run scripts/bench_gate.sh --rebaseline first"
        exit 1
    fi
    if cargo run -q --release -p olive-bench --bin bench_gate -- \
        "$BASELINE" "$RESULTS" --tolerance-pct "$TOLERANCE"; then
        exit 0
    fi
    echo "bench_gate: comparison failed; re-measuring once to rule out machine noise"
    measure
    cargo run -q --release -p olive-bench --bin bench_gate -- \
        "$BASELINE" "$RESULTS" --tolerance-pct "$TOLERANCE"
    ;;
*)
    echo "usage: scripts/bench_gate.sh [--rebaseline|--self-test]"
    exit 2
    ;;
esac
