#!/usr/bin/env bash
# Scale-out smoke test for the OliVe reproduction workspace: a 3-worker
# routed topology driven end-to-end with only what the repo ships.
#
# What it proves, in order:
#
#  1. `olive-prepare --verify` snapshots a model offline, and reloading the
#     snapshot is byte-exact AND much cheaper than the preparation it
#     replaces (the cold-start speedup, asserted numerically).
#  2. A 3-worker `olive-router` front door (one worker cold-starting from
#     the snapshot store) serves /v1/eval and a streamed /v1/generate
#     **byte-identical** to a single worker asked directly.
#  3. kill -9 of a worker is absorbed: the router is asked for the exact
#     request the dead worker owned (it must fail over, byte-identically),
#     a multi-seed sweep still answers 200 on every request, and the loss
#     is visible in the aggregated /healthz and the /metrics counters
#     (fail-overs, the unhealthy health-flip, per-worker breakdown).
#  4. `olive-router --spawn N` owns its own workers: it boots them, serves
#     through them, and stops them on shutdown.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo test --release -p olive-router --test routed =="
cargo test --release -q -p olive-router --test routed

echo "== build the daemons =="
cargo build --release -q -p olive-serve -p olive-router

BIN=target/release
EVAL_BODY='{"schemes": ["fp32", "olive-4bit"], "batches": 2, "oversample": 2, "seed": 41}'
GEN_BODY='{"scheme": "olive-4bit", "prompt_tokens": 4, "max_new_tokens": 5, "seed": 41}'

WORKDIR="$(mktemp -d)"
PIDS=()
trap '((${#PIDS[@]})) && kill -9 "${PIDS[@]}" 2>/dev/null; rm -rf "$WORKDIR"' EXIT

# Starts one daemon, scraping its URL from the given listening-line prefix.
# start_daemon VAR OUT_FILE PREFIX CMD...
start_daemon() {
    local -n url_var=$1
    local out=$2 prefix=$3
    shift 3
    "$@" >"$out" &
    PIDS+=($!)
    url_var=""
    for _ in $(seq 1 50); do
        url_var="$(sed -n "s|^$prefix ||p" "$out" | head -n1)"
        [[ -n "$url_var" ]] && break
        sleep 0.1
    done
    if [[ -z "$url_var" ]]; then
        echo "router_smoke: '$prefix' line never appeared in $out" >&2
        exit 1
    fi
}

echo "== olive-prepare: offline snapshot + cold-start speedup =="
ARTDIR="$WORKDIR/artifacts"
mkdir -p "$ARTDIR"
PREPARE_LOG="$WORKDIR/prepare.log"
"$BIN/olive-prepare" --artifact-dir "$ARTDIR" --verify \
    --eval "$EVAL_BODY" --generate "$GEN_BODY" | tee "$PREPARE_LOG"
# Every snapshot line must report load_ms well under prepare_ms.
awk '
    /^olive-prepare: wrote / {
        prepare = load = ""
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^prepare_ms=/) prepare = substr($i, 12)
            if ($i ~ /^load_ms=/)    load = substr($i, 9)
        }
        if (prepare == "" || load == "") { print "missing timing: " $0; exit 1 }
        if (load * 2 >= prepare) {
            print "cold-start load (" load "ms) not clearly cheaper than prepare (" prepare "ms)"
            exit 1
        }
        checked++
    }
    END { if (checked != 2) { print "expected 2 snapshot lines, saw " checked; exit 1 } }
' "$PREPARE_LOG"
echo "cold-start speedup verified for both snapshots"

echo "== reference worker (quantizes in-process) =="
start_daemon REF_URL "$WORKDIR/ref.out" "olive-serve listening on" \
    "$BIN/olive-serve" --port 0 --allow-shutdown
"$BIN/serve_client" POST "$REF_URL/v1/eval" --body "$EVAL_BODY" >"$WORKDIR/ref_eval.json"
"$BIN/serve_client" POST "$REF_URL/v1/generate" --body "$GEN_BODY" >"$WORKDIR/ref_gen.json"

echo "== 3 workers (worker 1 cold-starts from the snapshot store) =="
start_daemon W1_URL "$WORKDIR/w1.out" "olive-serve listening on" \
    "$BIN/olive-serve" --port 0 --allow-shutdown --artifact-dir "$ARTDIR"
start_daemon W2_URL "$WORKDIR/w2.out" "olive-serve listening on" \
    "$BIN/olive-serve" --port 0 --allow-shutdown
start_daemon W3_URL "$WORKDIR/w3.out" "olive-serve listening on" \
    "$BIN/olive-serve" --port 0 --allow-shutdown

echo "== router over the 3 workers =="
start_daemon ROUTER_URL "$WORKDIR/router.out" "olive-router listening on" \
    "$BIN/olive-router" --port 0 --allow-shutdown \
    --worker "$W1_URL" --worker "$W2_URL" --worker "$W3_URL"
echo "router is at $ROUTER_URL (workers: $W1_URL $W2_URL $W3_URL)"

echo "== routed bytes must equal single-worker bytes =="
"$BIN/serve_client" GET "$ROUTER_URL/healthz" >/dev/null
"$BIN/serve_client" POST "$ROUTER_URL/v1/eval" --body "$EVAL_BODY" >"$WORKDIR/routed_eval.json"
"$BIN/serve_client" POST "$ROUTER_URL/v1/generate" --body "$GEN_BODY" >"$WORKDIR/routed_gen.json"
diff "$WORKDIR/ref_eval.json" "$WORKDIR/routed_eval.json" \
    || { echo "router_smoke: routed /v1/eval bytes differ from single worker" >&2; exit 1; }
diff "$WORKDIR/ref_gen.json" "$WORKDIR/routed_gen.json" \
    || { echo "router_smoke: routed /v1/generate bytes differ from single worker" >&2; exit 1; }
echo "routed responses are byte-identical"

echo "== router /metrics: routed traffic visible, per-worker sums consistent =="
RMETRICS="$("$BIN/serve_client" GET "$ROUTER_URL/metrics" --no-json)"
# The eval + generate above were both routed; the per-worker breakdown must
# add up to the same total (healthz is answered by the router itself).
awk '
    /^olive_router_requests_served_total / { served = $2 }
    /^olive_router_worker_requests_total\{/ { by_worker += $2 }
    END {
        if (served != 2) { print "router_smoke: expected 2 routed requests, /metrics says " served; exit 1 }
        if (by_worker != served) {
            print "router_smoke: per-worker requests (" by_worker ") do not sum to the total (" served ")"
            exit 1
        }
    }
' <<<"$RMETRICS"
if ! grep -qF 'olive_router_worker_healthy{worker="' <<<"$RMETRICS"; then
    echo "router_smoke: /metrics is missing the per-worker health gauges" >&2
    exit 1
fi
echo "router metrics add up"

# Which worker owns EVAL_BODY's routing key? Ring placement depends on the
# workers' ephemeral ports, so find it empirically: re-post the same body
# (same key → same worker) and see whose per-worker counter moved.
echo "== find the worker that owns the eval key =="
BEFORE="$("$BIN/serve_client" GET "$ROUTER_URL/metrics" --no-json)"
"$BIN/serve_client" POST "$ROUTER_URL/v1/eval" --body "$EVAL_BODY" >/dev/null
AFTER="$("$BIN/serve_client" GET "$ROUTER_URL/metrics" --no-json)"
OWNER="$(awk '
    /^olive_router_worker_requests_total\{/ && match($0, /worker="[^"]*"/) {
        w = substr($0, RSTART + 8, RLENGTH - 9)
        if (NR == FNR) before[w] = $2
        else if ($2 > before[w] + 0) print w
    }
' <(printf '%s\n' "$BEFORE") <(printf '%s\n' "$AFTER"))"
case "$OWNER" in
    "$W1_URL") VICTIM=1 ;;
    "$W2_URL") VICTIM=2 ;;
    "$W3_URL") VICTIM=3 ;;
    *) echo "router_smoke: cannot map eval-key owner '$OWNER' to a worker" >&2; exit 1 ;;
esac
echo "eval key is owned by worker $VICTIM ($OWNER)"

echo "== kill -9 the owner: the same request must fail over, byte-identically =="
# PIDS: [reference, w1, w2, w3, router].
kill -9 "${PIDS[$VICTIM]}"
# The dead worker is still flagged healthy (no probe has failed yet), so it
# stays first in its key's candidate plan: the very next post of the same
# body MUST attempt it, fail, and fail over — deterministically, no sweep.
"$BIN/serve_client" POST "$ROUTER_URL/v1/eval" --body "$EVAL_BODY" >"$WORKDIR/failover_eval.json"
diff "$WORKDIR/ref_eval.json" "$WORKDIR/failover_eval.json" \
    || { echo "router_smoke: failed-over /v1/eval bytes differ from single worker" >&2; exit 1; }
for seed in 1 2 3 4 5 6; do
    "$BIN/serve_client" POST "$ROUTER_URL/v1/eval" \
        --body "{\"scheme\": \"olive-4bit\", \"batches\": 2, \"oversample\": 2, \"seed\": $seed}" \
        >/dev/null
done
echo "6-seed sweep survived the kill"
HEALTH="$("$BIN/serve_client" GET "$ROUTER_URL/healthz")"
if ! grep -q '"workers_healthy": 2' <<<"$HEALTH"; then
    echo "router_smoke: healthz does not report the dead worker: $HEALTH" >&2
    exit 1
fi
if ! grep -q '"status": "degraded"' <<<"$HEALTH"; then
    echo "router_smoke: healthz status should be degraded: $HEALTH" >&2
    exit 1
fi
if ! grep -q '"requests_failed_over": [1-9]' <<<"$HEALTH"; then
    echo "router_smoke: the fail-over is missing from aggregated healthz: $HEALTH" >&2
    exit 1
fi
# Every aggregated-healthz call probes every worker, and each failed probe
# counts toward the unhealthy threshold (3 by default) — so three more
# probes guarantee the dead worker's health FLIP is on the books too.
for _ in 1 2 3; do
    "$BIN/serve_client" GET "$ROUTER_URL/healthz" >/dev/null
done
KMETRICS="$("$BIN/serve_client" GET "$ROUTER_URL/metrics" --no-json)"
if ! grep -E 'olive_router_requests_failed_over_total [1-9]' <<<"$KMETRICS" >/dev/null; then
    echo "router_smoke: /metrics does not count the fail-overs" >&2
    exit 1
fi
if ! grep -E 'olive_router_worker_health_transitions_total\{.*to="unhealthy".*\} [1-9]' <<<"$KMETRICS" >/dev/null; then
    echo "router_smoke: /metrics does not show the health transition" >&2
    exit 1
fi
echo "worker loss is visible in aggregated healthz and /metrics"

echo "== clean shutdowns =="
"$BIN/serve_client" POST "$ROUTER_URL/shutdown" >/dev/null
"$BIN/serve_client" POST "$REF_URL/shutdown" >/dev/null
for url in "$W1_URL" "$W2_URL" "$W3_URL"; do
    [[ "$url" == "$OWNER" ]] && continue
    "$BIN/serve_client" POST "$url/shutdown" >/dev/null
done
for pid in "${PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
done
PIDS=()

echo "== olive-router --spawn 2 owns its workers =="
start_daemon SPAWN_URL "$WORKDIR/spawned.out" "olive-router listening on" \
    "$BIN/olive-router" --port 0 --allow-shutdown \
    --spawn 2 --serve-bin "$BIN/olive-serve" --artifact-dir "$ARTDIR"
SPAWN_PID="${PIDS[0]}"
"$BIN/serve_client" POST "$SPAWN_URL/v1/eval" --body "$EVAL_BODY" >"$WORKDIR/spawned_eval.json"
diff "$WORKDIR/ref_eval.json" "$WORKDIR/spawned_eval.json" \
    || { echo "router_smoke: spawned-topology bytes differ" >&2; exit 1; }
"$BIN/serve_client" POST "$SPAWN_URL/shutdown" >/dev/null
if ! wait "$SPAWN_PID"; then
    echo "router_smoke: spawning router did not shut down cleanly" >&2
    exit 1
fi
PIDS=()

echo "router_smoke: OK"
