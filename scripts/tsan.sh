#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrent crates (olive-runtime, olive-serve).
#
# TSan needs a nightly toolchain (-Zsanitizer is unstable) plus the rust-src
# component to rebuild std with instrumentation. Both are optional equipment:
# this environment is offline-first, so when nightly cannot be installed (or
# the -Zbuild-std rebuild fails, e.g. no rust-src vendored) the script SKIPS
# cleanly with exit 0 instead of failing the build. The CI job that calls
# this is additionally marked continue-on-error — TSan findings are advisory
# signal, the lint + test gates are the contract.
set -uo pipefail
cd "$(dirname "$0")/.."

skip() {
    echo "tsan: SKIP — $1"
    exit 0
}

command -v rustup >/dev/null 2>&1 || skip "rustup unavailable"

if ! rustup toolchain list | grep -q '^nightly'; then
    echo "== rustup toolchain install nightly =="
    rustup toolchain install nightly --profile minimal --component rust-src \
        || skip "nightly toolchain not installable (offline runner?)"
fi
rustup component add rust-src --toolchain nightly >/dev/null 2>&1 \
    || skip "rust-src component unavailable on nightly"

host="$(rustc -vV | sed -n 's/^host: //p')"
[[ -n "$host" ]] || skip "cannot determine host triple"

echo "== TSan: cargo +nightly test -p olive-runtime -p olive-serve (target $host) =="
if RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -q -Zbuild-std --target "$host" \
    -p olive-runtime -p olive-serve; then
    echo "tsan: OK"
else
    status=$?
    # Distinguish "could not build with TSan at all" from "TSan found races":
    # a plain build failure (missing std sources, linker without TSan runtime)
    # is a skip; once tests actually ran, their failure is real signal.
    if RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly build -q -Zbuild-std --target "$host" \
        -p olive-runtime -p olive-serve >/dev/null 2>&1; then
        echo "tsan: FAIL — instrumented tests failed (exit $status)"
        exit "$status"
    fi
    skip "instrumented build unavailable on this toolchain"
fi
